// Supporting micro-benchmarks for the substrates (not a paper figure):
// triple-store lookups, dictionary interning, SPARQL parsing, endpoint
// round-trips, the parallel hash join, and cancellation latency.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/cancel.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/hash_join.h"
#include "federation/binding_table.h"
#include "net/sparql_endpoint.h"
#include "sparql/parser.h"
#include "store/triple_store.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

std::unique_ptr<store::TripleStore> BuildStore(int universities) {
  workload::LubmConfig config = workload::LubmConfig::Bench();
  config.num_universities = universities;
  workload::LubmGenerator generator(config);
  auto store = std::make_unique<store::TripleStore>();
  for (int u = 0; u < universities; ++u) {
    for (const rdf::TermTriple& t : generator.GenerateUniversity(u)) {
      store->Add(t);
    }
  }
  store->Freeze();
  return store;
}

void BM_StoreMatchByPredicate(benchmark::State& state) {
  static auto store = BuildStore(2);
  rdf::TermId advisor = store->dict().Lookup(rdf::Term::Iri(
      "http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor"));
  for (auto _ : state) {
    auto span = store->Match(std::nullopt, advisor, std::nullopt);
    benchmark::DoNotOptimize(span.size());
  }
  state.counters["matches"] = static_cast<double>(
      store->Count(std::nullopt, advisor, std::nullopt));
}
BENCHMARK(BM_StoreMatchByPredicate);

void BM_StoreMatchBySubject(benchmark::State& state) {
  static auto store = BuildStore(2);
  auto all = store->Match(std::nullopt, std::nullopt, std::nullopt);
  Rng rng(5);
  for (auto _ : state) {
    rdf::TermId s = all[rng.NextBelow(all.size())].s;
    auto span = store->Match(s, std::nullopt, std::nullopt);
    benchmark::DoNotOptimize(span.size());
  }
}
BENCHMARK(BM_StoreMatchBySubject);

void BM_StoreFreeze(benchmark::State& state) {
  workload::LubmGenerator generator(workload::LubmConfig::Bench());
  auto triples = generator.GenerateUniversity(0);
  for (auto _ : state) {
    store::TripleStore store;
    for (const rdf::TermTriple& t : triples) store.Add(t);
    store.Freeze();
    benchmark::DoNotOptimize(store.size());
  }
  state.counters["triples"] = static_cast<double>(triples.size());
}
BENCHMARK(BM_StoreFreeze)->Unit(benchmark::kMillisecond);

void BM_DictionaryIntern(benchmark::State& state) {
  std::vector<rdf::Term> terms;
  for (int i = 0; i < 10000; ++i) {
    terms.push_back(
        rdf::Term::Iri("http://example.org/resource/" + std::to_string(i)));
  }
  for (auto _ : state) {
    rdf::Dictionary dict;
    for (const rdf::Term& t : terms) {
      benchmark::DoNotOptimize(dict.Intern(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DictionaryIntern)->Unit(benchmark::kMillisecond);

void BM_ParseQuery(benchmark::State& state) {
  std::string query = workload::LubmGenerator::QueryQa();
  for (auto _ : state) {
    auto parsed = sparql::ParseQuery(query);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_ParseQuery);

void BM_EndpointRoundTrip(benchmark::State& state) {
  static net::SparqlEndpoint endpoint("bench", BuildStore(1),
                                      net::LatencyModel::None());
  std::string query =
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?x WHERE { ?x ub:advisor ?y . }";
  for (auto _ : state) {
    auto response = endpoint.Query(query);
    benchmark::DoNotOptimize(response.ok());
  }
}
BENCHMARK(BM_EndpointRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_ParallelHashJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  fed::SharedDictionary dict;
  ThreadPool pool(8);
  fed::BindingTable left, right;
  left.vars = {"k", "a"};
  right.vars = {"k", "b"};
  for (int i = 0; i < n; ++i) {
    rdf::TermId key = dict.Intern(rdf::Term::Integer(i));
    left.AppendRow({key, dict.Intern(rdf::Term::Integer(i * 2))});
    right.AppendRow({key, dict.Intern(rdf::Term::Integer(i * 3))});
  }
  for (auto _ : state) {
    fed::BindingTable joined =
        core::ParallelHashJoin(left, right, &pool, 8);
    benchmark::DoNotOptimize(joined.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelHashJoin)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// ID-space vs. string-space join. BM_StringHashJoin is the pre-ID-engine
// execution model: wire-format rows of rdf::Term, keys hashed and
// compared as strings. BM_IdHashJoin is the engine's current path: the
// same data dictionary-encoded once, joined on fixed-width 64-bit ids
// over columnar storage. CI runs the pair at 65536 rows and gates on the
// id join being no slower (.github/workflows/ci.yml).
// ---------------------------------------------------------------------

void BM_StringHashJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sparql::ResultTable left, right;
  left.vars = {"k", "a"};
  right.vars = {"k", "b"};
  for (int i = 0; i < n; ++i) {
    rdf::Term key = rdf::Term::Iri("http://example.org/k/" +
                                   std::to_string(i));
    left.rows.push_back({key, rdf::Term::Integer(i * 2)});
    right.rows.push_back({key, rdf::Term::Integer(i * 3)});
  }
  for (auto _ : state) {
    std::unordered_multimap<std::string, size_t> index;
    index.reserve(right.rows.size());
    for (size_t r = 0; r < right.rows.size(); ++r) {
      index.emplace(right.rows[r][0]->ToString(), r);
    }
    sparql::ResultTable out;
    out.vars = {"k", "a", "b"};
    for (const auto& lrow : left.rows) {
      auto [begin, end] = index.equal_range(lrow[0]->ToString());
      for (auto it = begin; it != end; ++it) {
        out.rows.push_back(
            {lrow[0], lrow[1], right.rows[it->second][1]});
      }
    }
    benchmark::DoNotOptimize(out.rows.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StringHashJoin)->Arg(65536)->Unit(benchmark::kMillisecond);

void BM_IdHashJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  fed::SharedDictionary dict;
  fed::BindingTable left, right;
  left.vars = {"k", "a"};
  right.vars = {"k", "b"};
  for (int i = 0; i < n; ++i) {
    rdf::TermId key = dict.Intern(rdf::Term::Iri(
        "http://example.org/k/" + std::to_string(i)));
    left.AppendRow({key, dict.Intern(rdf::Term::Integer(i * 2))});
    right.AppendRow({key, dict.Intern(rdf::Term::Integer(i * 3))});
  }
  for (auto _ : state) {
    fed::BindingTable out = fed::HashJoin(left, right);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IdHashJoin)->Arg(65536)->Unit(benchmark::kMillisecond);

/// Serial vs. parallel cartesian product around the dispatch threshold.
/// The arg is the output size in cells (left rows × right rows, square
/// sides); comparing BM_CartesianSerial/N with BM_CartesianParallel/N
/// locates the crossover that ParallelHashJoin's 2048-cell threshold
/// encodes (see the comment at the constant in core/hash_join.cc).
fed::BindingTable CartesianSide(fed::SharedDictionary* dict, const char* var,
                                int rows, int salt) {
  fed::BindingTable side;
  side.vars = {var};
  for (int i = 0; i < rows; ++i) {
    side.AppendRow({dict->Intern(rdf::Term::Integer(i + salt))});
  }
  return side;
}

void BM_CartesianSerial(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  fed::SharedDictionary dict;
  fed::BindingTable left = CartesianSide(&dict, "a", side, 0);
  fed::BindingTable right = CartesianSide(&dict, "b", side, 1000000);
  for (auto _ : state) {
    fed::BindingTable out = fed::HashJoin(left, right);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.counters["cells"] = static_cast<double>(side) * side;
}
BENCHMARK(BM_CartesianSerial)
    ->Arg(16)->Arg(32)->Arg(45)->Arg(64)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_CartesianParallel(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  fed::SharedDictionary dict;
  ThreadPool pool(8);
  fed::BindingTable left = CartesianSide(&dict, "a", side, 0);
  fed::BindingTable right = CartesianSide(&dict, "b", side, 1000000);
  for (auto _ : state) {
    fed::BindingTable out = core::ParallelCartesian(left, right, &pool, 8);
    benchmark::DoNotOptimize(out.NumRows());
  }
  state.counters["cells"] = static_cast<double>(side) * side;
}
BENCHMARK(BM_CartesianParallel)
    ->Arg(16)->Arg(32)->Arg(45)->Arg(64)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

/// Cancellation latency: wall time from firing a CancelToken to a large
/// in-flight ParallelCartesian unwinding. This prices the cooperative
/// check granularity (one token probe per ~1024 cells plus the drain of
/// already-queued partition tasks), not join throughput — manual timing
/// starts at Cancel(), so join launch is excluded.
void BM_CancellationLatency(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  fed::SharedDictionary dict;
  ThreadPool pool(8);
  fed::BindingTable left = CartesianSide(&dict, "a", side, 0);
  fed::BindingTable right = CartesianSide(&dict, "b", side, 1000000);
  for (auto _ : state) {
    CancelToken token = CancelToken::Cancellable();
    std::atomic<bool> started{false};
    std::thread join_thread([&] {
      started.store(true, std::memory_order_release);
      fed::BindingTable out =
          core::ParallelCartesian(left, right, &pool, 8, &token);
      benchmark::DoNotOptimize(out.NumRows());
    });
    while (!started.load(std::memory_order_acquire)) {
    }
    auto fired = std::chrono::steady_clock::now();
    token.Cancel();
    join_thread.join();
    std::chrono::duration<double> latency =
        std::chrono::steady_clock::now() - fired;
    state.SetIterationTime(latency.count());
  }
  state.counters["cells"] = static_cast<double>(side) * side;
}
BENCHMARK(BM_CancellationLatency)
    ->Arg(512)->Arg(2048)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lusail

BENCHMARK_MAIN();
