#ifndef LUSAIL_BENCH_BENCH_UTIL_H_
#define LUSAIL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "baselines/fedx_engine.h"
#include "baselines/hibiscus.h"
#include "baselines/splendid_engine.h"
#include "core/lusail_engine.h"
#include "federation/federation.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "workload/federation_builder.h"

namespace lusail::bench {

/// Per-query deadline for every benchmark run (the paper aborts queries
/// after one hour; scaled down here). Override with
/// LUSAIL_BENCH_TIMEOUT_MS.
inline double BenchTimeoutMillis() {
  if (const char* env = std::getenv("LUSAIL_BENCH_TIMEOUT_MS")) {
    return std::strtod(env, nullptr);
  }
  return 10000.0;
}

/// Latency sleep scaling so geo-distributed runs stay laptop-friendly
/// while preserving every ranking. Override with
/// LUSAIL_BENCH_SLEEP_SCALE.
inline double BenchSleepScale(double default_scale) {
  if (const char* env = std::getenv("LUSAIL_BENCH_SLEEP_SCALE")) {
    return std::strtod(env, nullptr);
  }
  return default_scale;
}

inline net::LatencyModel LocalClusterLatency() {
  net::LatencyModel model = net::LatencyModel::LocalCluster();
  model.sleep_scale = BenchSleepScale(1.0);
  return model;
}

inline net::LatencyModel GeoLatency() {
  net::LatencyModel model = net::LatencyModel::GeoDistributed();
  model.sleep_scale = BenchSleepScale(0.25);
  return model;
}

/// The full engine lineup of the paper's evaluation, bound to one
/// federation.
struct EngineSet {
  std::unique_ptr<fed::Federation> federation;
  /// Per-endpoint request stats, exported into the default metrics
  /// registry so BENCH_*.json dumps carry a full /metrics-style snapshot.
  std::unique_ptr<obs::EndpointStatsRegistry> stats;
  obs::ScopedCollector stats_collector;
  std::unique_ptr<core::LusailEngine> lusail;
  std::unique_ptr<core::LusailEngine> lusail_lade_only;
  std::unique_ptr<baselines::FedXEngine> fedx;
  std::unique_ptr<baselines::HibiscusIndex> hibiscus_index;
  std::unique_ptr<baselines::FedXEngine> fedx_hibiscus;
  std::unique_ptr<baselines::SplendidEngine> splendid;

  static EngineSet Create(std::vector<workload::EndpointSpec> specs,
                          const net::LatencyModel& latency) {
    // LUSAIL_BENCH_TRACE=1 records a span trace per query; each bench then
    // dumps a Chrome-loadable <name>.trace.json next to its BENCH_*.json.
    const char* trace_env = std::getenv("LUSAIL_BENCH_TRACE");
    bool trace = trace_env != nullptr && std::string(trace_env) == "1";
    EngineSet set;
    set.federation = workload::BuildFederation(std::move(specs), latency);
    set.stats = std::make_unique<obs::EndpointStatsRegistry>();
    set.federation->set_stats_registry(set.stats.get());
    set.stats_collector = obs::ScopedCollector(
        obs::MetricsRegistry::Default(),
        [registry = set.stats.get()](obs::MetricsSnapshot* snapshot) {
          registry->ExportMetrics(snapshot);
        });
    core::LusailOptions lusail_opts;
    lusail_opts.trace = trace;
    set.lusail = std::make_unique<core::LusailEngine>(set.federation.get(),
                                                      lusail_opts);
    core::LusailOptions lade = lusail_opts;
    lade.enable_sape = false;
    set.lusail_lade_only =
        std::make_unique<core::LusailEngine>(set.federation.get(), lade);
    baselines::FedXOptions fedx_opts;
    fedx_opts.trace = trace;
    set.fedx = std::make_unique<baselines::FedXEngine>(set.federation.get(),
                                                       fedx_opts);
    set.hibiscus_index = std::make_unique<baselines::HibiscusIndex>(
        baselines::HibiscusIndex::Build(*set.federation));
    set.fedx_hibiscus = std::make_unique<baselines::FedXEngine>(
        set.federation.get(), fedx_opts);
    set.fedx_hibiscus->set_source_provider(set.hibiscus_index.get());
    baselines::SplendidOptions splendid_opts;
    splendid_opts.trace = trace;
    set.splendid = std::make_unique<baselines::SplendidEngine>(
        set.federation.get(), splendid_opts);
    set.splendid->BuildIndex();
    return set;
  }

  /// The comparison lineup of Figures 8-11: Lusail, FedX, FedX+HiBISCuS,
  /// SPLENDID.
  std::vector<fed::FederatedEngine*> ComparisonEngines() const {
    return {lusail.get(), fedx.get(), fedx_hibiscus.get(), splendid.get()};
  }
};

/// Directory for the per-query BENCH_*.json metric dumps. Defaults to the
/// working directory; set LUSAIL_BENCH_METRICS_DIR="" to disable dumps.
inline const char* BenchMetricsDir() {
  if (const char* env = std::getenv("LUSAIL_BENCH_METRICS_DIR")) return env;
  return ".";
}

/// Writes the last iteration's ExecutionProfile as BENCH_<label>.json (and,
/// when the engine recorded a trace, <label>.trace.json for
/// chrome://tracing / Perfetto). '/' in the benchmark name becomes '_'.
inline void DumpBenchMetrics(const std::string& label,
                             const fed::ExecutionProfile& profile, double rows,
                             double timeouts, double errors) {
  std::string dir = BenchMetricsDir();
  if (label.empty() || dir.empty()) return;
  std::string safe = label;
  for (char& c : safe) {
    if (c == '/' || c == ' ') c = '_';
  }
  obs::JsonValue json = fed::ProfileToJson(profile);
  json.Set("label", obs::JsonValue(label));
  json.Set("rows", obs::JsonValue(rows));
  json.Set("timeouts", obs::JsonValue(timeouts));
  json.Set("errors", obs::JsonValue(errors));
  // Snapshot of every collector registered with the default registry
  // (empty when the bench registered none), so a dump carries the same
  // counters /metrics would expose at this instant.
  json.Set("metrics", obs::MetricsRegistry::Default()->Collect().ToJson());
  std::ofstream out(dir + "/BENCH_" + safe + ".json");
  if (out) out << json.Pretty() << "\n";
  if (profile.trace != nullptr) {
    std::ofstream trace_out(dir + "/" + safe + ".trace.json");
    if (trace_out) trace_out << profile.trace->ToChromeJsonString() << "\n";
  }
}

/// Runs one (engine, query) pair per benchmark iteration, reporting the
/// paper's measured quantities as counters:
///   requests, askRequests, bytesSent, bytesRecv, rows, netMs and the
///   phase timings. Timeouts and unsupported shapes surface as the
///   "timeout" / "error" counters (the paper's TO / RE markers), not as
///   benchmark failures. When `label` is non-empty the last iteration's
///   profile is dumped to BENCH_<label>.json (see DumpBenchMetrics).
inline void RunFederatedQuery(benchmark::State& state,
                              fed::FederatedEngine* engine,
                              const std::string& query,
                              const std::string& label = "") {
  fed::ExecutionProfile last;
  double timeouts = 0, errors = 0, rows = 0;
  // Paper methodology (Section 5.1): each query runs three times and the
  // average of the last two is reported; source-selection caches stay
  // warm. The untimed warm-up below is run 1; the two timed iterations
  // are runs 2-3.
  {
    Deadline deadline = Deadline::AfterMillis(BenchTimeoutMillis());
    (void)engine->Execute(query, deadline);
  }
  for (auto _ : state) {
    Deadline deadline = Deadline::AfterMillis(BenchTimeoutMillis());
    auto result = engine->Execute(query, deadline);
    if (result.ok()) {
      last = result->profile;
      rows = static_cast<double>(result->table.NumRows());
    } else if (result.status().code() == StatusCode::kTimeout) {
      timeouts += 1;
    } else {
      errors += 1;
    }
  }
  state.counters["requests"] = static_cast<double>(last.requests);
  state.counters["askReq"] = static_cast<double>(last.ask_requests);
  state.counters["bytesSent"] = static_cast<double>(last.bytes_sent);
  state.counters["bytesRecv"] = static_cast<double>(last.bytes_received);
  state.counters["rows"] = rows;
  state.counters["netMs"] = last.network_ms;
  state.counters["firstRowMs"] = last.first_row_ms;
  state.counters["srcSelMs"] = last.source_selection_ms;
  state.counters["analysisMs"] = last.analysis_ms;
  state.counters["execMs"] = last.execution_ms;
  state.counters["timeout"] = timeouts;
  state.counters["error"] = errors;
  DumpBenchMetrics(label, last, rows, timeouts, errors);
}

/// Registers one benchmark per engine for the query under
/// "<figure>/<query>/<engine>". Single iteration: each run is a complete
/// federated query execution (caches stay warm within an engine, as in
/// the paper's repeated-runs methodology).
inline void RegisterQueryBenchmarks(const std::string& figure,
                                    const std::string& query_label,
                                    const std::string& query,
                                    const std::vector<fed::FederatedEngine*>&
                                        engines) {
  for (fed::FederatedEngine* engine : engines) {
    std::string name = figure + "/" + query_label + "/" + engine->name();
    benchmark::RegisterBenchmark(
        name.c_str(),
        [engine, query, name](benchmark::State& state) {
          RunFederatedQuery(state, engine, query, name);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
}

}  // namespace lusail::bench

#endif  // LUSAIL_BENCH_BENCH_UTIL_H_
