#ifndef LUSAIL_BENCH_BENCH_UTIL_H_
#define LUSAIL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "baselines/fedx_engine.h"
#include "baselines/hibiscus.h"
#include "baselines/splendid_engine.h"
#include "core/lusail_engine.h"
#include "federation/federation.h"
#include "workload/federation_builder.h"

namespace lusail::bench {

/// Per-query deadline for every benchmark run (the paper aborts queries
/// after one hour; scaled down here). Override with
/// LUSAIL_BENCH_TIMEOUT_MS.
inline double BenchTimeoutMillis() {
  if (const char* env = std::getenv("LUSAIL_BENCH_TIMEOUT_MS")) {
    return std::strtod(env, nullptr);
  }
  return 10000.0;
}

/// Latency sleep scaling so geo-distributed runs stay laptop-friendly
/// while preserving every ranking. Override with
/// LUSAIL_BENCH_SLEEP_SCALE.
inline double BenchSleepScale(double default_scale) {
  if (const char* env = std::getenv("LUSAIL_BENCH_SLEEP_SCALE")) {
    return std::strtod(env, nullptr);
  }
  return default_scale;
}

inline net::LatencyModel LocalClusterLatency() {
  net::LatencyModel model = net::LatencyModel::LocalCluster();
  model.sleep_scale = BenchSleepScale(1.0);
  return model;
}

inline net::LatencyModel GeoLatency() {
  net::LatencyModel model = net::LatencyModel::GeoDistributed();
  model.sleep_scale = BenchSleepScale(0.25);
  return model;
}

/// The full engine lineup of the paper's evaluation, bound to one
/// federation.
struct EngineSet {
  std::unique_ptr<fed::Federation> federation;
  std::unique_ptr<core::LusailEngine> lusail;
  std::unique_ptr<core::LusailEngine> lusail_lade_only;
  std::unique_ptr<baselines::FedXEngine> fedx;
  std::unique_ptr<baselines::HibiscusIndex> hibiscus_index;
  std::unique_ptr<baselines::FedXEngine> fedx_hibiscus;
  std::unique_ptr<baselines::SplendidEngine> splendid;

  static EngineSet Create(std::vector<workload::EndpointSpec> specs,
                          const net::LatencyModel& latency) {
    EngineSet set;
    set.federation = workload::BuildFederation(std::move(specs), latency);
    set.lusail = std::make_unique<core::LusailEngine>(set.federation.get());
    core::LusailOptions lade;
    lade.enable_sape = false;
    set.lusail_lade_only =
        std::make_unique<core::LusailEngine>(set.federation.get(), lade);
    set.fedx = std::make_unique<baselines::FedXEngine>(set.federation.get());
    set.hibiscus_index = std::make_unique<baselines::HibiscusIndex>(
        baselines::HibiscusIndex::Build(*set.federation));
    set.fedx_hibiscus =
        std::make_unique<baselines::FedXEngine>(set.federation.get());
    set.fedx_hibiscus->set_source_provider(set.hibiscus_index.get());
    set.splendid =
        std::make_unique<baselines::SplendidEngine>(set.federation.get());
    set.splendid->BuildIndex();
    return set;
  }

  /// The comparison lineup of Figures 8-11: Lusail, FedX, FedX+HiBISCuS,
  /// SPLENDID.
  std::vector<fed::FederatedEngine*> ComparisonEngines() const {
    return {lusail.get(), fedx.get(), fedx_hibiscus.get(), splendid.get()};
  }
};

/// Runs one (engine, query) pair per benchmark iteration, reporting the
/// paper's measured quantities as counters:
///   requests, askRequests, bytesSent, bytesRecv, rows, netMs and the
///   phase timings. Timeouts and unsupported shapes surface as the
///   "timeout" / "error" counters (the paper's TO / RE markers), not as
///   benchmark failures.
inline void RunFederatedQuery(benchmark::State& state,
                              fed::FederatedEngine* engine,
                              const std::string& query) {
  fed::ExecutionProfile last;
  double timeouts = 0, errors = 0, rows = 0;
  // Paper methodology (Section 5.1): each query runs three times and the
  // average of the last two is reported; source-selection caches stay
  // warm. The untimed warm-up below is run 1; the two timed iterations
  // are runs 2-3.
  {
    Deadline deadline = Deadline::AfterMillis(BenchTimeoutMillis());
    (void)engine->Execute(query, deadline);
  }
  for (auto _ : state) {
    Deadline deadline = Deadline::AfterMillis(BenchTimeoutMillis());
    auto result = engine->Execute(query, deadline);
    if (result.ok()) {
      last = result->profile;
      rows = static_cast<double>(result->table.NumRows());
    } else if (result.status().code() == StatusCode::kTimeout) {
      timeouts += 1;
    } else {
      errors += 1;
    }
  }
  state.counters["requests"] = static_cast<double>(last.requests);
  state.counters["askReq"] = static_cast<double>(last.ask_requests);
  state.counters["bytesSent"] = static_cast<double>(last.bytes_sent);
  state.counters["bytesRecv"] = static_cast<double>(last.bytes_received);
  state.counters["rows"] = rows;
  state.counters["netMs"] = last.network_ms;
  state.counters["srcSelMs"] = last.source_selection_ms;
  state.counters["analysisMs"] = last.analysis_ms;
  state.counters["execMs"] = last.execution_ms;
  state.counters["timeout"] = timeouts;
  state.counters["error"] = errors;
}

/// Registers one benchmark per engine for the query under
/// "<figure>/<query>/<engine>". Single iteration: each run is a complete
/// federated query execution (caches stay warm within an engine, as in
/// the paper's repeated-runs methodology).
inline void RegisterQueryBenchmarks(const std::string& figure,
                                    const std::string& query_label,
                                    const std::string& query,
                                    const std::vector<fed::FederatedEngine*>&
                                        engines) {
  for (fed::FederatedEngine* engine : engines) {
    std::string name = figure + "/" + query_label + "/" + engine->name();
    benchmark::RegisterBenchmark(
        name.c_str(),
        [engine, query](benchmark::State& state) {
          RunFederatedQuery(state, engine, query);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
}

}  // namespace lusail::bench

#endif  // LUSAIL_BENCH_BENCH_UTIL_H_
