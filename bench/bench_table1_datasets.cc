// Reproduces Table 1: the datasets used in the experiments — triple counts
// per endpoint for QFed, LargeRDFBench and LUBM federations, plus data
// generation / loading throughput. Each benchmark's "triples" counter is
// the corresponding Table 1 row.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "store/triple_store.h"
#include "workload/lrb_generator.h"
#include "workload/lubm_generator.h"
#include "workload/qfed_generator.h"

namespace lusail::bench {
namespace {

void LoadSpec(benchmark::State& state, const workload::EndpointSpec& spec) {
  size_t triples = 0;
  size_t memory = 0;
  for (auto _ : state) {
    store::TripleStore store;
    for (const rdf::TermTriple& t : spec.triples) store.Add(t);
    store.Freeze();
    triples = store.size();
    memory = store.MemoryUsageBytes();
    benchmark::DoNotOptimize(store.size());
  }
  state.counters["triples"] = static_cast<double>(triples);
  state.counters["memBytes"] = static_cast<double>(memory);
}

void RegisterFederation(const std::string& benchmark_name,
                        std::vector<workload::EndpointSpec> specs) {
  auto shared = std::make_shared<std::vector<workload::EndpointSpec>>(
      std::move(specs));
  size_t total = 0;
  for (size_t i = 0; i < shared->size(); ++i) {
    total += (*shared)[i].triples.size();
    std::string name =
        "Table1/" + benchmark_name + "/" + (*shared)[i].id;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [shared, i](benchmark::State& state) {
          LoadSpec(state, (*shared)[i]);
        })
        ->Unit(benchmark::kMillisecond);
  }
  std::string total_name = "Table1/" + benchmark_name + "/TOTAL";
  benchmark::RegisterBenchmark(
      total_name.c_str(),
      [total](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(total);
        }
        state.counters["triples"] = static_cast<double>(total);
      });
}

}  // namespace
}  // namespace lusail::bench

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Table 1 reproduction: datasets used in experiments.\n"
      "Each row's 'triples' counter corresponds to a Table 1 entry; scale\n"
      "is reduced (laptop simulation), relative sizes are preserved\n"
      "(LinkedTCGA slices dominate LargeRDFBench, QFed is the smallest).\n\n");
  bench::RegisterFederation(
      "QFed",
      workload::QFedGenerator(workload::QFedConfig()).GenerateAll());
  bench::RegisterFederation(
      "LargeRDFBench",
      workload::LrbGenerator(workload::LrbConfig()).GenerateAll());
  {
    workload::LubmConfig sweep = workload::LubmConfig::Sweep();
    workload::LubmGenerator gen(sweep);
    // Summarize LUBM as in Table 1: one row for the whole federation.
    size_t total = 0;
    for (int u = 0; u < sweep.num_universities; ++u) {
      total += gen.GenerateUniversity(u).size();
    }
    benchmark::RegisterBenchmark(
        ("Table1/LUBM/" + std::to_string(sweep.num_universities) +
         "-universities")
            .c_str(),
        [total](benchmark::State& state) {
          for (auto _ : state) benchmark::DoNotOptimize(total);
          state.counters["triples"] = static_cast<double>(total);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
