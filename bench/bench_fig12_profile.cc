// Reproduces Figure 12: profiling Lusail's three phases (source
// selection, query analysis / LADE, query execution / SAPE).
//   (a) LargeRDFBench S10 / C4 / B1 on the local cluster: analysis must
//       stay a small fraction of total time.
//   (b,c) LUBM Q3 / Q4 while scaling the number of university endpoints
//       (2..64 by default; set LUSAIL_BENCH_MAX_ENDPOINTS=256 for the
//       paper's full sweep), with cold and warm ASK/check caches.
// The phase timings are the srcSelMs / analysisMs / execMs counters.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "workload/lrb_generator.h"
#include "workload/lubm_generator.h"

namespace lusail::bench {
namespace {

int MaxEndpoints() {
  if (const char* env = std::getenv("LUSAIL_BENCH_MAX_ENDPOINTS")) {
    return std::atoi(env);
  }
  return 64;
}

void RunLusailProfiled(benchmark::State& state, core::LusailEngine* engine,
                       const std::string& query, bool clear_caches) {
  fed::ExecutionProfile last;
  for (auto _ : state) {
    if (clear_caches) engine->ClearCaches();
    Deadline deadline = Deadline::AfterMillis(BenchTimeoutMillis());
    auto result = engine->Execute(query, deadline);
    if (result.ok()) last = result->profile;
  }
  state.counters["srcSelMs"] = last.source_selection_ms;
  state.counters["analysisMs"] = last.analysis_ms;
  state.counters["execMs"] = last.execution_ms;
  state.counters["requests"] = static_cast<double>(last.requests);
}

}  // namespace
}  // namespace lusail::bench

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Figure 12 reproduction: Lusail phase profiling.\n"
      "(a) LRB S10/C4/B1 phases; (b,c) LUBM Q3/Q4 endpoint sweep with\n"
      "cold vs warm ASK+check caches.\n\n");

  // ---- (a) Phase breakdown on LRB S10 / C4 / B1. ----
  static workload::LrbGenerator lrb{workload::LrbConfig()};
  static auto lrb_engines = bench::EngineSet::Create(
      lrb.GenerateAll(), bench::LocalClusterLatency());
  auto find_query = [](const std::string& label) {
    for (const auto& set :
         {workload::LrbGenerator::SimpleQueries(),
          workload::LrbGenerator::ComplexQueries(),
          workload::LrbGenerator::LargeQueries()}) {
      for (const auto& [l, q] : set) {
        if (l == label) return q;
      }
    }
    return std::string();
  };
  for (const char* label : {"S10", "C4", "B1"}) {
    std::string query = find_query(label);
    benchmark::RegisterBenchmark(
        ("Fig12a/" + std::string(label) + "/Lusail").c_str(),
        [query](benchmark::State& state) {
          bench::RunLusailProfiled(state, lrb_engines.lusail.get(), query,
                                   /*clear_caches=*/false);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }

  // ---- (b, c) LUBM endpoint sweep. ----
  static std::vector<std::unique_ptr<bench::EngineSet>> keep_alive;
  for (int endpoints = 2; endpoints <= bench::MaxEndpoints();
       endpoints *= 2) {
    workload::LubmConfig config = workload::LubmConfig::Sweep();
    config.num_universities = endpoints;
    workload::LubmGenerator generator(config);
    auto engines = std::make_unique<bench::EngineSet>(
        bench::EngineSet::Create(generator.GenerateAll(),
                                 bench::LocalClusterLatency()));
    core::LusailEngine* lusail = engines->lusail.get();
    for (const auto& [label, query] :
         {std::pair<std::string, std::string>{"Q3",
                                              workload::LubmGenerator::Q3()},
          {"Q4", workload::LubmGenerator::Q4()}}) {
      std::string base = "Fig12bc/" + label + "/" +
                         std::to_string(endpoints) + "endpoints";
      benchmark::RegisterBenchmark(
          (base + "/coldCache").c_str(),
          [lusail, query](benchmark::State& state) {
            bench::RunLusailProfiled(state, lusail, query, true);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
      benchmark::RegisterBenchmark(
          (base + "/warmCache").c_str(),
          [lusail, query](benchmark::State& state) {
            // The cold run above (and this warm-up) populate the caches.
            Deadline deadline =
                Deadline::AfterMillis(bench::BenchTimeoutMillis());
            (void)lusail->Execute(query, deadline);
            bench::RunLusailProfiled(state, lusail, query, false);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
    keep_alive.push_back(std::move(engines));
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
