// Reproduces the Section 4.1 cardinality-estimation accuracy claim: the
// median q-error of Lusail's subquery cardinality estimates over the
// LargeRDFBench queries (paper: 1.09, optimal is 1). For every benchmark
// query, the decomposition's estimated subquery cardinalities are
// compared against the actual union result sizes of the subqueries at
// their relevant endpoints; only multi-pattern subqueries count, as in
// the paper.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "workload/lrb_generator.h"

namespace lusail::bench {
namespace {

void QErrorBenchmark(benchmark::State& state, core::LusailEngine* lusail,
                     const fed::Federation* federation) {
  std::vector<double> qerrors;
  for (auto _ : state) {
    qerrors.clear();
    std::vector<std::pair<std::string, std::string>> queries;
    for (const auto& set :
         {workload::LrbGenerator::SimpleQueries(),
          workload::LrbGenerator::ComplexQueries(),
          workload::LrbGenerator::LargeQueries()}) {
      queries.insert(queries.end(), set.begin(), set.end());
    }
    for (const auto& [label, query_text] : queries) {
      auto analyzed = lusail->Analyze(query_text);
      if (!analyzed.ok()) continue;
      const auto& triples = analyzed->query.where.triples;
      for (const core::Subquery& sq : analyzed->decomposition.subqueries) {
        if (sq.triple_indices.size() < 2) continue;
        // Actual cardinality: run the subquery at its endpoints, count.
        uint64_t actual = 0;
        fed::MetricsCollector metrics;
        std::string text = sq.ToSparql(triples);
        for (int ep : sq.sources) {
          auto table = federation->Execute(static_cast<size_t>(ep), text,
                                           &metrics, Deadline());
          if (table.ok()) actual += table->NumRows();
        }
        if (actual == 0) continue;
        double estimate = std::max(1.0, sq.estimated_cardinality);
        double a = static_cast<double>(actual);
        qerrors.push_back(std::max(estimate / a, a / estimate));
      }
    }
  }
  std::sort(qerrors.begin(), qerrors.end());
  if (!qerrors.empty()) {
    state.counters["medianQError"] = qerrors[qerrors.size() / 2];
    state.counters["maxQError"] = qerrors.back();
    state.counters["subqueries"] = static_cast<double>(qerrors.size());
  }
}

}  // namespace
}  // namespace lusail::bench

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Cardinality estimation accuracy (Section 4.1): median q-error of\n"
      "multi-pattern subquery estimates over LargeRDFBench queries.\n"
      "Paper reports a median of 1.09 (optimal 1).\n\n");
  static workload::LrbGenerator generator{workload::LrbConfig()};
  static auto federation = workload::BuildFederation(
      generator.GenerateAll(), net::LatencyModel::None());
  static core::LusailEngine lusail(federation.get());
  benchmark::RegisterBenchmark(
      "QError/LargeRDFBench",
      [](benchmark::State& state) {
        bench::QErrorBenchmark(state, &lusail, federation.get());
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
