// Reproduces the extended-version claim referenced at the end of
// Section 5: "Lusail reduces the memory footprint and communication costs
// compared to FedX." For two queries per benchmark, reports
//   peakRows  — the largest intermediate binding-table population held at
//               the federator (memory-footprint proxy), and
//   bytesRecv — total communication volume,
// for Lusail vs FedX.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "workload/lrb_generator.h"
#include "workload/lubm_generator.h"
#include "workload/qfed_generator.h"

namespace lusail::bench {
namespace {

void RunWithMemoryCounters(benchmark::State& state,
                           fed::FederatedEngine* engine,
                           const std::string& query) {
  fed::ExecutionProfile last;
  for (auto _ : state) {
    Deadline deadline = Deadline::AfterMillis(BenchTimeoutMillis());
    auto result = engine->Execute(query, deadline);
    if (result.ok()) last = result->profile;
  }
  state.counters["peakRows"] =
      static_cast<double>(last.peak_intermediate_rows);
  state.counters["bytesRecv"] = static_cast<double>(last.bytes_received);
  state.counters["rowsRecv"] = static_cast<double>(last.rows_received);
  state.counters["requests"] = static_cast<double>(last.requests);
}

void Register(const std::string& name, bench::EngineSet* engines,
              const std::string& label, const std::string& query) {
  for (fed::FederatedEngine* engine :
       {static_cast<fed::FederatedEngine*>(engines->lusail.get()),
        static_cast<fed::FederatedEngine*>(engines->fedx.get())}) {
    std::string bench_name =
        "ExtMemory/" + name + "/" + label + "/" + engine->name();
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [engine, query](benchmark::State& state) {
          RunWithMemoryCounters(state, engine, query);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace lusail::bench

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Extended-version experiment: memory footprint (peak intermediate\n"
      "rows at the federator) and communication volume, Lusail vs FedX.\n\n");
  static std::vector<std::unique_ptr<bench::EngineSet>> keep_alive;
  {
    workload::QFedGenerator qfed{workload::QFedConfig()};
    auto engines = std::make_unique<bench::EngineSet>(bench::EngineSet::Create(
        qfed.GenerateAll(), bench::LocalClusterLatency()));
    bench::Register("QFed", engines.get(), "C2P2",
                    workload::QFedGenerator::C2P2());
    bench::Register("QFed", engines.get(), "C2P2B",
                    workload::QFedGenerator::C2P2B());
    keep_alive.push_back(std::move(engines));
  }
  {
    workload::LubmGenerator lubm(workload::LubmConfig::Bench());
    auto engines = std::make_unique<bench::EngineSet>(bench::EngineSet::Create(
        lubm.GenerateAll(), bench::LocalClusterLatency()));
    bench::Register("LUBM", engines.get(), "Q2",
                    workload::LubmGenerator::Q2());
    bench::Register("LUBM", engines.get(), "Q4",
                    workload::LubmGenerator::Q4());
    keep_alive.push_back(std::move(engines));
  }
  {
    workload::LrbGenerator lrb{workload::LrbConfig()};
    auto engines = std::make_unique<bench::EngineSet>(bench::EngineSet::Create(
        lrb.GenerateAll(), bench::LocalClusterLatency()));
    std::string c1, b2;
    for (const auto& [l, q] : workload::LrbGenerator::ComplexQueries()) {
      if (l == "C1") c1 = q;
    }
    for (const auto& [l, q] : workload::LrbGenerator::LargeQueries()) {
      if (l == "B2") b2 = q;
    }
    bench::Register("LRB", engines.get(), "C1", c1);
    bench::Register("LRB", engines.get(), "B2", b2);
    keep_alive.push_back(std::move(engines));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
