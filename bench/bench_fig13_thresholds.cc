// Reproduces Figure 13: the delayed-subquery threshold ablation. For each
// threshold (mu, mu+sigma, mu+2sigma, outliers-only) and each
// LargeRDFBench category (simple / complex / large), the benchmark runs
// every query of the category serially and reports the total time — the
// figure's bars. Expected shape (paper): mu+2sigma and outliers-only lose
// on simple/complex (too few subqueries delayed), mu loses on large
// (too little parallelism), mu+sigma is consistently good.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "workload/lrb_generator.h"

namespace lusail::bench {
namespace {

void RunCategory(benchmark::State& state, core::LusailEngine* engine,
                 const std::vector<std::pair<std::string, std::string>>&
                     queries) {
  uint64_t requests = 0;
  double timeouts = 0;
  for (auto _ : state) {
    requests = 0;
    for (const auto& [label, query] : queries) {
      Deadline deadline = Deadline::AfterMillis(BenchTimeoutMillis());
      auto result = engine->Execute(query, deadline);
      if (result.ok()) {
        requests += result->profile.requests;
      } else {
        timeouts += 1;
      }
    }
  }
  state.counters["requests"] = static_cast<double>(requests);
  state.counters["timeout"] = timeouts;
}

}  // namespace
}  // namespace lusail::bench

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Figure 13 reproduction: delay-threshold ablation over the\n"
      "LargeRDFBench categories (geo-distributed latency). Each benchmark\n"
      "is the total time to run the whole category.\n\n");
  static workload::LrbGenerator generator{workload::LrbConfig()};
  static auto federation = workload::BuildFederation(generator.GenerateAll(),
                                                     bench::GeoLatency());

  struct ThresholdCase {
    const char* name;
    core::DelayThreshold threshold;
  };
  static const ThresholdCase kThresholds[] = {
      {"mu", core::DelayThreshold::kMu},
      {"mu+sigma", core::DelayThreshold::kMuSigma},
      {"mu+2sigma", core::DelayThreshold::kMu2Sigma},
      {"outliers", core::DelayThreshold::kOutliersOnly},
  };
  static std::vector<std::unique_ptr<core::LusailEngine>> engines;
  static const std::vector<
      std::pair<std::string,
                std::vector<std::pair<std::string, std::string>>>>
      kCategories = {
          {"Simple", workload::LrbGenerator::SimpleQueries()},
          {"Complex", workload::LrbGenerator::ComplexQueries()},
          {"Large", workload::LrbGenerator::LargeQueries()},
      };

  for (const ThresholdCase& tc : kThresholds) {
    core::LusailOptions options;
    options.delay_threshold = tc.threshold;
    engines.push_back(
        std::make_unique<core::LusailEngine>(federation.get(), options));
    core::LusailEngine* engine = engines.back().get();
    for (const auto& [category, queries] : kCategories) {
      std::string name =
          "Fig13/" + category + "/" + std::string(tc.name);
      const auto* queries_ptr = &queries;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [engine, queries_ptr](benchmark::State& state) {
            bench::RunCategory(state, engine, *queries_ptr);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
