// Reproduces Figure 10: LargeRDFBench on a local cluster, 13 endpoints.
// Series per query category: simple (S), complex (C), large (B), engines
// Lusail / FedX / FedX+HiBISCuS / SPLENDID. Expected shape (paper):
// comparable on most simple queries (index-based systems sometimes ahead),
// Lusail clearly ahead on S13/S14 and on most complex and all large
// queries; baselines hit timeouts/errors on C/B queries (the counters
// 'timeout' and 'error' mark the paper's TO / RE entries).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "workload/lrb_generator.h"

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Figure 10 reproduction: LargeRDFBench (13 endpoints, local).\n"
      "Categories: S=simple, C=complex, B=large intermediate results.\n\n");
  workload::LrbGenerator generator{workload::LrbConfig()};
  auto engines = bench::EngineSet::Create(generator.GenerateAll(),
                                          bench::LocalClusterLatency());
  for (const auto& [label, query] : workload::LrbGenerator::SimpleQueries()) {
    bench::RegisterQueryBenchmarks("Fig10/Simple", label, query,
                                   engines.ComparisonEngines());
  }
  for (const auto& [label, query] : workload::LrbGenerator::ComplexQueries()) {
    bench::RegisterQueryBenchmarks("Fig10/Complex", label, query,
                                   engines.ComparisonEngines());
  }
  for (const auto& [label, query] : workload::LrbGenerator::LargeQueries()) {
    bench::RegisterQueryBenchmarks("Fig10/Large", label, query,
                                   engines.ComparisonEngines());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
