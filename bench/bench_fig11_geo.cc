// Reproduces Figure 11: the geo-distributed federation (7 Azure regions
// in the paper, here the GeoDistributed latency model: ~15ms RTT, WAN
// bandwidth). (a) LargeRDFBench complex queries, (b) large queries,
// (c) LUBM on 2 endpoints. Expected shape (paper): the communication
// overhead amplifies every gap; Lusail's queries finish near their
// local-cluster times while request-heavy baselines degrade by orders of
// magnitude (LUBM: ~1s vs >1000s in the paper).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "workload/lrb_generator.h"
#include "workload/lubm_generator.h"

int main(int argc, char** argv) {
  using namespace lusail;
  std::printf(
      "Figure 11 reproduction: geo-distributed deployment (simulated WAN\n"
      "latency, sleep scale %.2f; set LUSAIL_BENCH_SLEEP_SCALE=1 for full\n"
      "15ms RTTs). Timeout counter = the paper's TO entries.\n\n",
      bench::BenchSleepScale(0.25));

  workload::LrbGenerator lrb{workload::LrbConfig()};
  auto lrb_engines = bench::EngineSet::Create(lrb.GenerateAll(),
                                              bench::GeoLatency());
  for (const auto& [label, query] : workload::LrbGenerator::ComplexQueries()) {
    bench::RegisterQueryBenchmarks("Fig11a/Complex", label, query,
                                   lrb_engines.ComparisonEngines());
  }
  for (const auto& [label, query] : workload::LrbGenerator::LargeQueries()) {
    bench::RegisterQueryBenchmarks("Fig11b/Large", label, query,
                                   lrb_engines.ComparisonEngines());
  }

  workload::LubmConfig lubm_config = workload::LubmConfig::Bench();
  lubm_config.num_universities = 2;
  workload::LubmGenerator lubm(lubm_config);
  auto lubm_engines = bench::EngineSet::Create(lubm.GenerateAll(),
                                               bench::GeoLatency());
  for (const auto& [label, query] :
       workload::LubmGenerator::BenchmarkQueries()) {
    bench::RegisterQueryBenchmarks("Fig11c/LUBM2", label, query,
                                   lubm_engines.ComparisonEngines());
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
