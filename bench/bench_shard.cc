// Sharded data plane microbenchmark: the same LUBM federation served by
// 1, 2, and 4 subject-hash shards per logical endpoint, queried through
// the engine with a warm shared cache. Reports the scatter-gather cost
// of fanout (requests, rows, wall time) as shard count grows, plus the
// direct-endpoint scatter latency and the subject-constant single-shard
// fast path. Each engine-level run dumps BENCH_shard_*.json.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cache/federation_cache.h"
#include "core/lusail_engine.h"
#include "net/sparql_endpoint.h"
#include "shard/shard_map.h"
#include "shard/sharded_endpoint.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

/// One LUBM federation whose every endpoint is an N-shard
/// ShardedEndpoint over in-process members, with a shared cache warmed
/// by one untimed pass.
struct ShardedFixture {
  cache::FederationCache cache;
  fed::Federation federation;
  std::vector<std::shared_ptr<shard::ShardedEndpoint>> endpoints;
  std::unique_ptr<core::LusailEngine> engine;
};

std::unique_ptr<store::TripleStore> StoreOf(
    const std::vector<rdf::TermTriple>& triples) {
  auto store = std::make_unique<store::TripleStore>();
  for (const auto& triple : triples) store->Add(triple);
  store->Freeze();
  return store;
}

ShardedFixture* FixtureFor(size_t num_shards) {
  static std::map<size_t, std::unique_ptr<ShardedFixture>> fixtures;
  auto it = fixtures.find(num_shards);
  if (it != fixtures.end()) return it->second.get();

  auto fixture = std::make_unique<ShardedFixture>();
  workload::LubmConfig config = workload::LubmConfig::Small();
  std::vector<workload::EndpointSpec> specs =
      workload::LubmGenerator(config).GenerateAll();
  shard::ShardMap map = shard::ShardMap::HashRing(num_shards);
  for (const auto& spec : specs) {
    std::vector<std::vector<rdf::TermTriple>> slices(num_shards);
    for (const auto& triple : spec.triples) {
      slices[map.ShardOfSubject(triple.subject)].push_back(triple);
    }
    std::vector<std::shared_ptr<net::Endpoint>> members;
    for (size_t i = 0; i < slices.size(); ++i) {
      members.push_back(std::make_shared<net::SparqlEndpoint>(
          spec.id + "#" + std::to_string(i), StoreOf(slices[i]),
          net::LatencyModel::None()));
    }
    shard::ShardedEndpointOptions options;
    options.cache = &fixture->cache;
    auto endpoint = std::make_shared<shard::ShardedEndpoint>(
        spec.id, map, std::move(members), options);
    fixture->endpoints.push_back(endpoint);
    fixture->federation.Add(endpoint);
  }
  fixture->federation.set_query_cache(&fixture->cache);
  fixture->engine =
      std::make_unique<core::LusailEngine>(&fixture->federation);

  ShardedFixture* raw = fixture.get();
  fixtures.emplace(num_shards, std::move(fixture));
  return raw;
}

/// Engine-level LUBM Qa at 1/2/4 shards, warm cache (RunFederatedQuery's
/// untimed warm-up fills the verdict/count tiers before timing starts).
void BM_ShardedLubmQa(benchmark::State& state) {
  ShardedFixture* fixture = FixtureFor(static_cast<size_t>(state.range(0)));
  bench::RunFederatedQuery(
      state, fixture->engine.get(), workload::LubmGenerator::QueryQa(),
      "shard_lubm_qa_" + std::to_string(state.range(0)) + "shards");
  shard::ShardedEndpointStats stats = fixture->endpoints[0]->stats();
  state.counters["fanout"] = static_cast<double>(stats.fanout_requests);
  state.counters["pruned"] = static_cast<double>(stats.pruned_shards);
}
BENCHMARK(BM_ShardedLubmQa)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Direct scatter-gather latency of one full-scan star, no engine.
void BM_ShardScatterScan(benchmark::State& state) {
  ShardedFixture* fixture = FixtureFor(static_cast<size_t>(state.range(0)));
  const std::string text =
      "SELECT ?x ?y WHERE { ?x "
      "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> ?y . }";
  double rows = 0;
  for (auto _ : state) {
    auto response = fixture->endpoints[0]->Query(text);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    rows = static_cast<double>(response->RowCount());
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = rows;
}
BENCHMARK(BM_ShardScatterScan)->Arg(1)->Arg(2)->Arg(4);

/// Subject-constant lookup: routing must hit exactly one shard, so the
/// latency should stay flat as the shard count grows.
void BM_ShardSubjectConstant(benchmark::State& state) {
  ShardedFixture* fixture = FixtureFor(static_cast<size_t>(state.range(0)));
  const std::string text =
      "SELECT ?p ?o WHERE { "
      "<http://www.Department0.University0.edu/FullProfessor0> ?p ?o . }";
  for (auto _ : state) {
    auto response = fixture->endpoints[0]->Query(text);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(response->RowCount());
  }
  shard::ShardedEndpointStats stats = fixture->endpoints[0]->stats();
  state.counters["single_shard"] =
      static_cast<double>(stats.single_shard_queries);
}
BENCHMARK(BM_ShardSubjectConstant)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace lusail

BENCHMARK_MAIN();
