// Cross-query cache + QueryService smoke benchmark (and CI gate).
//
// Runs the LUBM Q1-Q4 workload twice against one federation with a
// shared cache::FederationCache attached: a cold pass (fresh engine,
// empty cache) and a warm pass (fresh engine, warm cache). The warm pass
// must issue strictly fewer endpoint requests — the CI step fails this
// binary otherwise — and the full workload targets a >= 5x reduction.
// It then runs the same workload 8-ways concurrent through QueryService
// and checks the results are row-identical to sequential execution.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "cache/federation_cache.h"
#include "cache/query_service.h"
#include "core/lusail_engine.h"
#include "net/sparql_endpoint.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace {

using namespace lusail;

uint64_t TotalRequests(const fed::Federation& federation) {
  uint64_t total = 0;
  for (size_t i = 0; i < federation.size(); ++i) {
    auto* ep = dynamic_cast<net::SparqlEndpoint*>(federation.endpoint(i));
    if (ep != nullptr) total += ep->stats().requests;
  }
  return total;
}

void ResetRequests(const fed::Federation& federation) {
  for (size_t i = 0; i < federation.size(); ++i) {
    auto* ep = dynamic_cast<net::SparqlEndpoint*>(federation.endpoint(i));
    if (ep != nullptr) ep->ResetStats();
  }
}

/// Order-free row fingerprint for result comparison.
std::multiset<std::string> RowSet(const sparql::ResultTable& table) {
  // Sort columns by variable name so layouts compare equal.
  std::vector<size_t> cols(table.vars.size());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  std::sort(cols.begin(), cols.end(), [&table](size_t a, size_t b) {
    return table.vars[a] < table.vars[b];
  });
  std::multiset<std::string> out;
  for (const auto& row : table.rows) {
    std::string key;
    for (size_t c : cols) {
      key += table.vars[c] + "=";
      key += row[c].has_value() ? row[c]->ToString() : "UNBOUND";
      key += ";";
    }
    out.insert(std::move(key));
  }
  return out;
}

core::LusailOptions CachingOptions() {
  core::LusailOptions options;
  options.result_cache = true;
  return options;
}

}  // namespace

int main() {
  workload::LubmConfig config = workload::LubmConfig::Small();
  workload::LubmGenerator generator(config);
  std::unique_ptr<fed::Federation> federation = workload::BuildFederation(
      generator.GenerateAll(), net::LatencyModel::None());
  cache::FederationCache shared_cache;
  federation->set_query_cache(&shared_cache);

  const std::vector<std::pair<std::string, std::string>> queries =
      workload::LubmGenerator::BenchmarkQueries();

  // ---- Cold pass: empty shared cache, fresh engine. ----
  ResetRequests(*federation);
  std::map<std::string, std::multiset<std::string>> cold_rows;
  {
    core::LusailEngine engine(federation.get(), CachingOptions());
    for (const auto& [label, query] : queries) {
      auto result = engine.Execute(query, Deadline());
      if (!result.ok()) {
        std::printf("FAIL: cold %s: %s\n", label.c_str(),
                    result.status().ToString().c_str());
        return 1;
      }
      cold_rows[label] = RowSet(result->table);
    }
  }
  const uint64_t cold_requests = TotalRequests(*federation);

  // ---- Warm pass: fresh engine (empty per-engine caches), warm shared
  // cache — every saved request is the shared cache's doing. ----
  ResetRequests(*federation);
  {
    core::LusailEngine engine(federation.get(), CachingOptions());
    for (const auto& [label, query] : queries) {
      auto result = engine.Execute(query, Deadline());
      if (!result.ok()) {
        std::printf("FAIL: warm %s: %s\n", label.c_str(),
                    result.status().ToString().c_str());
        return 1;
      }
      if (RowSet(result->table) != cold_rows[label]) {
        std::printf("FAIL: warm %s rows differ from cold run\n",
                    label.c_str());
        return 1;
      }
    }
  }
  const uint64_t warm_requests = TotalRequests(*federation);

  double reduction = warm_requests == 0
                         ? static_cast<double>(cold_requests)
                         : static_cast<double>(cold_requests) /
                               static_cast<double>(warm_requests);
  std::printf("cold requests: %llu\nwarm requests: %llu\nreduction: %.1fx\n",
              static_cast<unsigned long long>(cold_requests),
              static_cast<unsigned long long>(warm_requests), reduction);
  std::printf("cache stats: %s\n",
              shared_cache.ToJson().Pretty().c_str());
  if (warm_requests >= cold_requests) {
    std::printf("FAIL: warm run must issue strictly fewer endpoint "
                "requests than cold\n");
    return 1;
  }

  // ---- QueryService: 8 concurrent queries (Q1-Q4 twice) must match the
  // sequential results exactly. ----
  cache::QueryServiceOptions service_options;
  service_options.max_concurrent = 8;
  service_options.engine = CachingOptions();
  cache::QueryService service(federation.get(), service_options);
  std::vector<std::pair<std::string,
                        std::future<Result<fed::FederatedResult>>>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const auto& [label, query] : queries) {
      auto submitted = service.Submit(query);
      if (!submitted.ok()) {
        std::printf("FAIL: submit %s: %s\n", label.c_str(),
                    submitted.status().ToString().c_str());
        return 1;
      }
      futures.emplace_back(label, std::move(submitted).value());
    }
  }
  for (auto& [label, future] : futures) {
    Result<fed::FederatedResult> result = future.get();
    if (!result.ok()) {
      std::printf("FAIL: concurrent %s: %s\n", label.c_str(),
                  result.status().ToString().c_str());
      return 1;
    }
    if (RowSet(result->table) != cold_rows[label]) {
      std::printf("FAIL: concurrent %s rows differ from sequential\n",
                  label.c_str());
      return 1;
    }
  }
  service.Drain();
  std::printf("query service: %s\n", service.StatsJson().Serialize().c_str());
  std::printf("OK: 8 concurrent queries matched sequential results\n");
  return 0;
}
