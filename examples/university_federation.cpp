// University federation: generates a LUBM-style federation of four
// universities, each behind its own simulated endpoint, then runs the
// benchmark queries Q1-Q4 through Lusail and the FedX baseline and
// compares runtimes, request counts, and communication volume — a
// miniature of the paper's Figure 9 experiment.
//
//   ./build/examples/university_federation [num_universities]

#include <cstdio>
#include <cstdlib>

#include "baselines/fedx_engine.h"
#include "common/stopwatch.h"
#include "core/lusail_engine.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

int main(int argc, char** argv) {
  using namespace lusail;

  workload::LubmConfig config = workload::LubmConfig::Bench();
  if (argc > 1) config.num_universities = std::atoi(argv[1]);
  workload::LubmGenerator generator(config);

  auto specs = generator.GenerateAll();
  size_t total_triples = 0;
  for (const auto& spec : specs) total_triples += spec.triples.size();
  std::printf("Deployed %d university endpoints, %zu triples total.\n\n",
              config.num_universities, total_triples);

  auto federation = workload::BuildFederation(
      std::move(specs), net::LatencyModel::LocalCluster());

  core::LusailEngine lusail(federation.get());
  baselines::FedXEngine fedx(federation.get());

  std::printf("%-4s %-8s %10s %10s %12s %8s\n", "qry", "engine", "time(ms)",
              "requests", "bytesRecv", "rows");
  for (const auto& [label, query] :
       workload::LubmGenerator::BenchmarkQueries()) {
    for (fed::FederatedEngine* engine :
         std::initializer_list<fed::FederatedEngine*>{&lusail, &fedx}) {
      Stopwatch timer;
      auto result = engine->Execute(query, Deadline::AfterMillis(60000));
      double ms = timer.ElapsedMillis();
      if (!result.ok()) {
        std::printf("%-4s %-8s %10s (%s)\n", label.c_str(),
                    engine->name().c_str(), "--",
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("%-4s %-8s %10.1f %10llu %12llu %8zu\n", label.c_str(),
                  engine->name().c_str(), ms,
                  static_cast<unsigned long long>(result->profile.requests),
                  static_cast<unsigned long long>(
                      result->profile.bytes_received),
                  result->table.NumRows());
    }
  }

  // Show what LADE concluded for Q4 (the query that reaches into remote
  // universities through ub:PhDDegreeFrom).
  auto analyzed = lusail.Analyze(workload::LubmGenerator::Q4());
  if (analyzed.ok()) {
    std::printf("\nQ4 analysis: %zu global join variable(s), %zu subqueries",
                analyzed->gjvs.GjvNames().size(),
                analyzed->decomposition.subqueries.size());
    std::printf(" (GJVs:");
    for (const std::string& v : analyzed->gjvs.GjvNames()) {
      std::printf(" ?%s", v.c_str());
    }
    std::printf(")\n");
  }
  return 0;
}
