// lusail_cli — run federated SPARQL queries from the command line.
//
// Usage:
//   lusail_cli [options] [query-file]
//
// Options:
//   --workload lubm|qfed|lrb|figure1   built-in federation (default lubm)
//   --dir <path>          load a federation from a directory of .nt files
//                         (one endpoint per file) instead of a workload
//   --export <path>       write the selected workload's endpoints as .nt
//                         files to <path> and exit
//   --engine lusail|lade|fedx|splendid   engine to run (default lusail)
//   --latency none|local|geo            network model (default local)
//   --explain             print the plan (sources, GJVs, decomposition,
//                         SAPE schedule) instead of executing (Lusail only)
//   --explain-json        like --explain, as JSON
//   --trace <file>        record a span trace of the execution and write
//                         it as Chrome trace-event JSON to <file>
//                         (load in chrome://tracing or Perfetto)
//   --cache-stats         attach a shared cross-query cache (with
//                         subquery-result memoization) and print its
//                         hit/miss/eviction counters after the query
//   --deadline-ms <ms>    per-query deadline (default 60000). The budget
//                         covers the whole federated run; with --remote the
//                         remaining budget is forwarded to every endpoint
//                         as an X-Lusail-Deadline-Ms header, so remote
//                         servers stop evaluating when the client's budget
//                         expires. --timeout is accepted as an alias.
//   --remote <specs>      federate over live HTTP SPARQL endpoints
//                         instead of in-process stores. <specs> is a
//                         comma-separated list of host:port=id entries
//                         (e.g. 127.0.0.1:9001=univ0,127.0.0.1:9002=univ1),
//                         each typically a lusail_endpointd process.
//                         Replicas of one logical endpoint are separated
//                         by '|': host:port|host:port=id builds a
//                         ReplicaGroup with health-checked failover and
//                         hedged requests (replicas get ids id#0, id#1,
//                         ...)
//   --shards <spec>       add a *sharded* logical endpoint: N endpointd
//                         processes each holding the slice of one dataset
//                         the subject hash ring assigns them. <spec> is
//                         host:port,host:port,...=logical-id where each
//                         comma-separated member is addr[|addr...][^token]
//                         ('|' makes that shard a ReplicaGroup, '^token'
//                         switches to explicit-token routing, e.g. LUBM
//                         per-university files). Repeatable. Queries
//                         scatter-gather across the shards with
//                         subject-constant routing and cached-verdict
//                         pruning; see DESIGN.md "Sharded data plane".
//   --partial-results     when a shard member fails mid-query, drop its
//                         contribution and return a lower-bound answer
//                         (the profile reports partial) instead of
//                         failing the whole query
//   --shard-split <file>  loader mode: split the N-Triples file into
//                         --shard-count chunks by the same subject hash
//                         ring the routing uses, write them next to
//                         --shard-out (default: alongside the input) as
//                         <stem>.shard<k>.nt, and exit
//   --shard-count <n>     number of chunks for --shard-split (default 4)
//   --shard-out <dir>     output directory for --shard-split
//   --retry <n>           enable the standard retry policy with n
//                         attempts per request (0 = off, the default)
//   --cache-file <path>   persist the shared cross-query cache across
//                         runs: warm-load the snapshot before the query
//                         and save it back afterwards (implies attaching
//                         the shared cache), so a repeated query needs
//                         zero cold ASK probes. The engine's term
//                         dictionary snapshots alongside it (<path>.dict),
//                         so a warm restart keeps interned TermIds and
//                         content hashes stable across runs.
//   --format tsv|srj      result output format (default tsv; srj is
//                         SPARQL 1.1 JSON Results, the wire format)
//   --stream              stream rows to stdout as endpoints produce them
//                         instead of buffering the whole answer. Only
//                         queries the engine would run in whole-query mode
//                         stream exactly (one co-located subquery, no
//                         ORDER BY/DISTINCT/aggregate, nothing joined at
//                         the federator); anything else falls back to the
//                         buffered path with a note. LIMIT is pushed to
//                         the endpoints (as offset+limit), OFFSET is
//                         applied locally while printing. Against --remote
//                         endpoints the rows arrive over chunked HTTP and
//                         the first row prints before the endpoints finish
//                         evaluating; the profile line reports the
//                         first-row latency next to the total.
//   --metrics-port <n>    serve a federator-side stats listener on port n
//                         (0 = ephemeral) for the lifetime of the run:
//                         GET /metrics is the Prometheus exposition of the
//                         HTTP client, replica, resilience, and cache
//                         counters; GET /debug/queries is the flight
//                         recorder. The listener has no /sparql backend.
//   --slow-ms <n>         log queries slower than n ms as one-line JSON
//   --log-json            log every completed query as one JSON line
//
// With --remote and --trace, the written Chrome trace merges the
// federator's spans with every contacted endpointd's server-side span
// subtree (shipped back in X-Lusail-Trace), so one file shows the whole
// distributed execution with correct parenting.
//
// The query is read from the given file, or from stdin when no file is
// given. Results are printed as TSV (or SRJ), followed by the execution
// profile.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "baselines/fedx_engine.h"
#include "baselines/splendid_engine.h"
#include "cache/federation_cache.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/id_table.h"
#include "core/lusail_engine.h"
#include "net/replica.h"
#include "net/resilience.h"
#include "obs/explain.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "rpc/http_server.h"
#include "rpc/http_sparql_endpoint.h"
#include "rpc/results_json.h"
#include "shard/shard_map.h"
#include "shard/sharded_endpoint.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "workload/federation_builder.h"
#include "workload/lrb_generator.h"
#include "workload/lubm_generator.h"
#include "workload/qfed_generator.h"

namespace {

using namespace lusail;

struct CliOptions {
  std::string workload = "lubm";
  std::string directory;
  std::string export_dir;
  std::string engine = "lusail";
  std::string latency = "local";
  std::string query_file;
  std::string trace_file;
  std::string remote;
  std::vector<std::string> shards;
  std::string shard_split_file;
  std::string shard_out_dir;
  size_t shard_count = 4;
  bool partial_results = false;
  std::string cache_file;
  std::string format = "tsv";
  bool stream = false;
  double timeout_ms = 60000;
  int retry_attempts = 0;
  int metrics_port = -1;  ///< -1 = no stats listener; 0 = ephemeral.
  double slow_ms = 0.0;
  bool log_json = false;
  bool explain = false;
  bool explain_json = false;
  bool cache_stats = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: lusail_cli [--workload lubm|qfed|lrb|figure1]\n"
               "                  [--dir <nt-directory>] [--export <dir>]\n"
               "                  [--engine lusail|lade|fedx|splendid]\n"
               "                  [--latency none|local|geo] [--explain]\n"
               "                  [--explain-json] [--trace <file>]\n"
               "                  [--cache-stats] [--deadline-ms <ms>]\n"
               "                  [--remote host:port[|host:port...]=id,...]\n"
               "                  [--shards host:port,host:port,...=id]\n"
               "                  [--partial-results]\n"
               "                  [--shard-split <file.nt> [--shard-count <n>]\n"
               "                   [--shard-out <dir>]]\n"
               "                  [--retry <n>] [--cache-file <path>]\n"
               "                  [--format tsv|srj] [--stream]\n"
               "                  [--metrics-port <n>]\n"
               "                  [--slow-ms <n>] [--log-json]\n"
               "                  [query-file]\n");
  return 2;
}

/// Parses one "host:port" half of a --remote entry.
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& text, const std::string& entry) {
  size_t colon = text.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("bad --remote entry (want host:port=id): " +
                                   entry);
  }
  std::string host = text.substr(0, colon);
  unsigned long port = std::strtoul(text.c_str() + colon + 1, nullptr, 10);
  if (host.empty() || port == 0 || port > 65535) {
    return Status::InvalidArgument("bad --remote entry: " + entry);
  }
  return std::make_pair(std::move(host), static_cast<uint16_t>(port));
}

/// Parses "host:port=id,host:port|host:port=id,..." into a federation of
/// live HTTP endpoints; a '|'-separated address list becomes a
/// ReplicaGroup (failover + hedging) whose replicas are named id#0,
/// id#1, ...
Result<std::unique_ptr<fed::Federation>> BuildRemoteFederation(
    const std::string& specs) {
  auto federation = std::make_unique<fed::Federation>();
  std::istringstream stream(specs);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    if (entry.empty()) continue;
    size_t eq = entry.rfind('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad --remote entry (want host:port=id): " +
                                     entry);
    }
    std::string addresses = entry.substr(0, eq);
    std::string id = entry.substr(eq + 1);
    if (id.empty()) {
      return Status::InvalidArgument("bad --remote entry: " + entry);
    }
    std::vector<std::string> hosts = Split(addresses, '|');
    if (hosts.size() == 1) {
      auto parsed = ParseHostPort(hosts[0], entry);
      if (!parsed.ok()) return parsed.status();
      federation->Add(std::make_shared<rpc::HttpSparqlEndpoint>(
          id, parsed->first, parsed->second));
      continue;
    }
    std::vector<std::shared_ptr<net::Endpoint>> replicas;
    for (size_t r = 0; r < hosts.size(); ++r) {
      auto parsed = ParseHostPort(hosts[r], entry);
      if (!parsed.ok()) return parsed.status();
      replicas.push_back(std::make_shared<rpc::HttpSparqlEndpoint>(
          id + "#" + std::to_string(r), parsed->first, parsed->second));
    }
    federation->Add(std::make_shared<net::ReplicaGroup>(id,
                                                        std::move(replicas)));
  }
  if (federation->size() == 0) {
    return Status::InvalidArgument("--remote lists no endpoints");
  }
  return federation;
}

/// Builds one sharded logical endpoint from a --shards spec: every member
/// becomes an HTTP client endpoint (or a ReplicaGroup of them when the
/// member lists several '|'-joined addresses) behind a scatter-gather
/// ShardedEndpoint facade.
Result<std::shared_ptr<shard::ShardedEndpoint>> BuildShardedEndpoint(
    const std::string& spec_text, cache::FederationCache* cache,
    bool partial_results) {
  auto spec = shard::ParseShardsArg(spec_text);
  if (!spec.ok()) return spec.status();
  std::vector<std::shared_ptr<net::Endpoint>> members;
  for (const shard::ShardMemberSpec& member : spec->members) {
    if (member.addresses.size() == 1) {
      auto parsed = ParseHostPort(member.addresses[0], spec_text);
      if (!parsed.ok()) return parsed.status();
      members.push_back(std::make_shared<rpc::HttpSparqlEndpoint>(
          member.id, parsed->first, parsed->second));
      continue;
    }
    std::vector<std::shared_ptr<net::Endpoint>> replicas;
    for (size_t r = 0; r < member.addresses.size(); ++r) {
      auto parsed = ParseHostPort(member.addresses[r], spec_text);
      if (!parsed.ok()) return parsed.status();
      replicas.push_back(std::make_shared<rpc::HttpSparqlEndpoint>(
          member.id + "@" + std::to_string(r), parsed->first, parsed->second));
    }
    members.push_back(
        std::make_shared<net::ReplicaGroup>(member.id, std::move(replicas)));
  }
  shard::ShardedEndpointOptions shard_options;
  shard_options.partial_results = partial_results;
  shard_options.cache = cache;
  return std::make_shared<shard::ShardedEndpoint>(
      spec->logical_id, spec->Map(), std::move(members), shard_options);
}

/// Loader mode: split an N-Triples file into shard_count chunks by the
/// same subject ring the routing uses, writing <stem>.shard<k>.nt.
int RunShardSplit(const CliOptions& options) {
  std::ifstream in(options.shard_split_file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n",
                 options.shard_split_file.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  shard::ShardMap map = shard::ShardMap::HashRing(options.shard_count);
  auto chunks = shard::SplitNTriples(buffer.str(), map);
  if (!chunks.ok()) {
    std::fprintf(stderr, "split failed: %s\n",
                 chunks.status().ToString().c_str());
    return 1;
  }
  std::filesystem::path input(options.shard_split_file);
  std::filesystem::path dir = options.shard_out_dir.empty()
                                  ? input.parent_path()
                                  : std::filesystem::path(options.shard_out_dir);
  std::string stem = input.stem().string();
  for (size_t k = 0; k < chunks->size(); ++k) {
    std::filesystem::path out_path =
        dir / (stem + ".shard" + std::to_string(k) + ".nt");
    std::ofstream out(out_path);
    out << (*chunks)[k];
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.string().c_str());
      return 1;
    }
    size_t lines = static_cast<size_t>(
        std::count((*chunks)[k].begin(), (*chunks)[k].end(), '\n'));
    std::fprintf(stderr, "# wrote %s (%zu triples)\n",
                 out_path.string().c_str(), lines);
  }
  return 0;
}

std::vector<workload::EndpointSpec> MakeWorkload(const std::string& name) {
  if (name == "qfed") {
    return workload::QFedGenerator{workload::QFedConfig()}.GenerateAll();
  }
  if (name == "lrb") {
    return workload::LrbGenerator{workload::LrbConfig()}.GenerateAll();
  }
  if (name == "figure1") {
    return workload::Figure1Federation();
  }
  return workload::LubmGenerator(workload::LubmConfig::Bench()).GenerateAll();
}

net::LatencyModel MakeLatency(const std::string& name) {
  if (name == "none") return net::LatencyModel::None();
  if (name == "geo") return net::LatencyModel::GeoDistributed();
  return net::LatencyModel::LocalCluster();
}

void PrintProfile(const fed::ExecutionProfile& profile) {
  std::fprintf(stderr,
               "# requests=%llu (ask=%llu)  sent=%llu B  received=%llu B\n"
               "# phases: source-selection %.1f ms, analysis %.1f ms, "
               "execution %.1f ms, total %.1f ms\n"
               "# simulated network time: %.1f ms; pushed optionals: %llu\n",
               static_cast<unsigned long long>(profile.requests),
               static_cast<unsigned long long>(profile.ask_requests),
               static_cast<unsigned long long>(profile.bytes_sent),
               static_cast<unsigned long long>(profile.bytes_received),
               profile.source_selection_ms, profile.analysis_ms,
               profile.execution_ms, profile.total_ms, profile.network_ms,
               static_cast<unsigned long long>(profile.pushed_optionals));
  if (profile.first_row_ms > 0.0) {
    std::fprintf(stderr, "# first endpoint row after %.1f ms\n",
                 profile.first_row_ms);
  }
  if (profile.hedged_requests > 0) {
    std::fprintf(stderr, "# hedged requests: %llu\n",
                 static_cast<unsigned long long>(profile.hedged_requests));
  }
}

/// Why a query cannot stream end-to-end, or "" when it can. Streaming
/// unions per-endpoint answers of the whole query text, which is exact
/// only when the engine itself would run in whole-query mode: one
/// co-located subquery, nothing joined, deduped, sorted, or aggregated at
/// the federator afterwards.
std::string StreamIneligibleReason(const sparql::Query& query,
                                   const obs::ExplainReport& report) {
  if (query.form != sparql::QueryForm::kSelect) return "not a SELECT";
  if (query.distinct) return "DISTINCT dedups across endpoints";
  if (query.aggregate.has_value()) return "aggregate needs every row";
  if (!query.order_by.empty()) return "ORDER BY needs a global sort";
  if (!query.where.unions.empty()) {
    return "top-level UNION joins at the federator";
  }
  if (!query.where.values.empty()) return "VALUES joins at the federator";
  if (report.subqueries.size() != 1) {
    return std::to_string(report.subqueries.size()) +
           " subqueries join at the federator";
  }
  if (report.unpushed_optionals > 0) {
    return "OPTIONAL left-joins at the federator";
  }
  return "";
}

/// End-to-end streaming execution: ships the whole query (OFFSET
/// stripped, LIMIT capped to offset+limit) to every endpoint in turn via
/// QueryStreaming and prints rows as batches arrive. OFFSET is skipped
/// while printing; once the global LIMIT is satisfied the remaining
/// endpoints are never contacted. Exact only for stream-eligible queries
/// (see StreamIneligibleReason).
int RunStream(const CliOptions& options, fed::Federation* federation,
              const sparql::Query& parsed) {
  sparql::Query shipped = parsed;
  const uint64_t offset = shipped.offset.value_or(0);
  const std::optional<uint64_t> limit = shipped.limit;
  shipped.offset.reset();
  if (limit.has_value()) shipped.limit = offset + *limit;
  std::string text = sparql::QueryToString(shipped);
  const uint64_t want = limit.has_value() ? offset + *limit : 0;
  const bool srj = options.format == "srj";

  Stopwatch wall;
  double first_row_ms = 0.0;
  uint64_t printed = 0;
  uint64_t skipped = 0;
  uint64_t received = 0;
  std::vector<std::string> header;
  bool head_printed = false;
  bool srj_first = true;

  auto emit = [&](sparql::ResultTable&& batch) {
    if (!head_printed) {
      header = batch.vars;
      if (srj) {
        std::fputs(rpc::SrjStreamPrefix(header).c_str(), stdout);
      } else {
        std::string line;
        for (size_t i = 0; i < header.size(); ++i) {
          if (i > 0) line += '\t';
          line += '?';
          line += header[i];
        }
        line += '\n';
        std::fputs(line.c_str(), stdout);
      }
      head_printed = true;
    }
    // Map this batch's columns onto the header order (endpoints answer
    // the same text, but stay defensive about column order).
    std::vector<int> col(header.size(), -1);
    for (size_t i = 0; i < header.size(); ++i) {
      for (size_t j = 0; j < batch.vars.size(); ++j) {
        if (batch.vars[j] == header[i]) {
          col[i] = static_cast<int>(j);
          break;
        }
      }
    }
    sparql::ResultTable out;
    out.vars = header;
    for (auto& row : batch.rows) {
      if (skipped < offset) {
        ++skipped;
        continue;
      }
      if (limit.has_value() && printed >= *limit) break;
      std::vector<std::optional<rdf::Term>> mapped(header.size());
      for (size_t i = 0; i < header.size(); ++i) {
        if (col[i] >= 0 && static_cast<size_t>(col[i]) < row.size()) {
          mapped[i] = std::move(row[static_cast<size_t>(col[i])]);
        }
      }
      out.rows.push_back(std::move(mapped));
      ++printed;
    }
    if (!out.rows.empty()) {
      if (first_row_ms == 0.0) first_row_ms = wall.ElapsedMillis();
      if (srj) {
        std::fputs(rpc::SrjStreamBindings(out, &srj_first).c_str(), stdout);
      } else {
        std::string tsv = out.ToTsv();
        // Drop ToTsv's header line; it was printed once already.
        size_t nl = tsv.find('\n');
        std::fputs(tsv.c_str() + (nl == std::string::npos ? 0 : nl + 1),
                   stdout);
      }
    }
    std::fflush(stdout);
  };

  CancelToken cancel{Deadline::AfterMillis(options.timeout_ms)};
  net::StreamOptions stream_options;
  for (size_t i = 0; i < federation->size(); ++i) {
    if (limit.has_value() && skipped + printed >= want) break;
    if (limit.has_value()) {
      stream_options.max_rows = want - (skipped + printed);
    }
    auto summary = federation->endpoint(i)->QueryStreaming(
        text, cancel, stream_options,
        [&](net::StreamBatch&& batch) -> Status {
          sparql::ResultTable table;
          if (batch.ids != nullptr && batch.ids_dict != nullptr) {
            table = core::DecodeIdTable(*batch.ids, *batch.ids_dict);
          } else {
            table = std::move(batch.table);
          }
          received += table.NumRows();
          emit(std::move(table));
          return Status::OK();
        });
    if (!summary.ok()) {
      std::fprintf(stderr, "stream from %s failed: %s\n",
                   federation->id(i).c_str(),
                   summary.status().ToString().c_str());
      return 1;
    }
  }
  if (srj) {
    if (!head_printed) {
      std::fputs(rpc::SrjStreamPrefix({}).c_str(), stdout);
    }
    std::fputs(rpc::SrjStreamSuffix().c_str(), stdout);
    std::fputs("\n", stdout);
  }
  std::fprintf(stderr,
               "# %llu rows streamed (%llu received, %llu skipped by "
               "OFFSET)\n"
               "# first row after %.1f ms, total %.1f ms\n",
               static_cast<unsigned long long>(printed),
               static_cast<unsigned long long>(received),
               static_cast<unsigned long long>(skipped), first_row_ms,
               wall.ElapsedMillis());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--workload") {
      if (!next(&options.workload)) return Usage();
    } else if (arg == "--dir") {
      if (!next(&options.directory)) return Usage();
    } else if (arg == "--export") {
      if (!next(&options.export_dir)) return Usage();
    } else if (arg == "--engine") {
      if (!next(&options.engine)) return Usage();
    } else if (arg == "--latency") {
      if (!next(&options.latency)) return Usage();
    } else if (arg == "--deadline-ms" || arg == "--timeout") {
      std::string v;
      if (!next(&v)) return Usage();
      options.timeout_ms = std::strtod(v.c_str(), nullptr);
    } else if (arg == "--explain") {
      options.explain = true;
    } else if (arg == "--explain-json") {
      options.explain = true;
      options.explain_json = true;
    } else if (arg == "--trace") {
      if (!next(&options.trace_file)) return Usage();
    } else if (arg == "--remote") {
      if (!next(&options.remote)) return Usage();
    } else if (arg == "--shards") {
      std::string spec;
      if (!next(&spec)) return Usage();
      options.shards.push_back(std::move(spec));
    } else if (arg == "--partial-results") {
      options.partial_results = true;
    } else if (arg == "--shard-split") {
      if (!next(&options.shard_split_file)) return Usage();
    } else if (arg == "--shard-out") {
      if (!next(&options.shard_out_dir)) return Usage();
    } else if (arg == "--shard-count") {
      std::string v;
      if (!next(&v)) return Usage();
      options.shard_count = std::strtoul(v.c_str(), nullptr, 10);
      if (options.shard_count == 0) {
        std::fprintf(stderr, "--shard-count must be >= 1\n");
        return Usage();
      }
    } else if (arg == "--format") {
      if (!next(&options.format)) return Usage();
      if (options.format != "tsv" && options.format != "srj") {
        std::fprintf(stderr, "unknown format: %s\n", options.format.c_str());
        return Usage();
      }
    } else if (arg == "--stream") {
      options.stream = true;
    } else if (arg == "--retry") {
      std::string v;
      if (!next(&v)) return Usage();
      options.retry_attempts = static_cast<int>(std::strtol(v.c_str(),
                                                            nullptr, 10));
    } else if (arg == "--cache-stats") {
      options.cache_stats = true;
    } else if (arg == "--cache-file") {
      if (!next(&options.cache_file)) return Usage();
    } else if (arg == "--metrics-port") {
      std::string v;
      if (!next(&v)) return Usage();
      options.metrics_port = static_cast<int>(std::strtol(v.c_str(),
                                                          nullptr, 10));
    } else if (arg == "--slow-ms") {
      std::string v;
      if (!next(&v)) return Usage();
      options.slow_ms = std::strtod(v.c_str(), nullptr);
    } else if (arg == "--log-json") {
      options.log_json = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage();
    } else {
      options.query_file = arg;
    }
  }

  if (!options.shard_split_file.empty()) return RunShardSplit(options);

  if (!options.export_dir.empty()) {
    auto specs = MakeWorkload(options.workload);
    Status status = workload::ExportFederation(specs, options.export_dir);
    if (!status.ok()) {
      std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu endpoints to %s\n", specs.size(),
                 options.export_dir.c_str());
    return 0;
  }

  // Shared cross-query cache: one process-wide instance every engine on
  // this federation consults for ASK verdicts, COUNT probes, and (for
  // Lusail with result_cache) subquery result tables. Declared before the
  // federation so sharded endpoints can prune through it.
  cache::FederationCache shared_cache;

  // Build the federation.
  std::unique_ptr<fed::Federation> federation;
  if (!options.remote.empty()) {
    auto built = BuildRemoteFederation(options.remote);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    federation = std::move(built).value();
  } else if (!options.shards.empty() && options.directory.empty()) {
    // --shards with no --remote/--dir: the sharded endpoints added below
    // are the whole federation.
    federation = std::make_unique<fed::Federation>();
  } else if (!options.directory.empty()) {
    auto loaded = workload::LoadFederationFromDirectory(
        options.directory, MakeLatency(options.latency));
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    federation = std::move(loaded).value();
  } else {
    federation = workload::BuildFederation(MakeWorkload(options.workload),
                                           MakeLatency(options.latency));
  }

  // Sharded logical endpoints join whatever federation was built above.
  std::vector<shard::ShardedEndpoint*> sharded_endpoints;
  for (const std::string& spec_text : options.shards) {
    auto sharded = BuildShardedEndpoint(spec_text, &shared_cache,
                                        options.partial_results);
    if (!sharded.ok()) {
      std::fprintf(stderr, "%s\n", sharded.status().ToString().c_str());
      return 1;
    }
    sharded_endpoints.push_back(sharded->get());
    federation->Add(*sharded);
  }
  if (federation->size() == 0) {
    std::fprintf(stderr, "federation has no endpoints\n");
    return 1;
  }
  std::fprintf(stderr, "# federation: %zu endpoints\n", federation->size());

  if (options.cache_stats || !options.cache_file.empty()) {
    federation->set_query_cache(&shared_cache);
  }
  if (!options.cache_file.empty()) {
    auto loaded = shared_cache.LoadFromDisk(options.cache_file);
    if (loaded.ok()) {
      std::fprintf(stderr, "# cache: warm-loaded %llu entries from %s\n",
                   static_cast<unsigned long long>(*loaded),
                   options.cache_file.c_str());
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      // A missing snapshot is just a cold start; anything else (corrupt,
      // wrong version) is worth a warning but never fatal.
      std::fprintf(stderr, "# cache: ignoring snapshot %s: %s\n",
                   options.cache_file.c_str(),
                   loaded.status().ToString().c_str());
    }
  }

  // Telemetry plane: a flight recorder for structured query logging and
  // (with --metrics-port) a federator-side stats listener exposing the
  // Prometheus exposition of every client-side counter.
  obs::FlightRecorderOptions recorder_options;
  recorder_options.slow_threshold_ms = options.slow_ms;
  recorder_options.log_json = options.log_json;
  obs::FlightRecorder recorder(recorder_options);
  obs::MetricsRegistry metrics;
  core::LusailEngine* metered_engine = nullptr;  // Set once built below.
  obs::ScopedCollector federation_metrics(
      &metrics, [&](obs::MetricsSnapshot* snapshot) {
        for (size_t i = 0; i < federation->size(); ++i) {
          net::Endpoint* endpoint = federation->endpoint(i);
          if (auto* http = dynamic_cast<rpc::HttpSparqlEndpoint*>(endpoint)) {
            http->ExportMetrics(snapshot);
          } else if (auto* resilient =
                         dynamic_cast<net::ResilientEndpoint*>(endpoint)) {
            resilient->ExportMetrics(snapshot);
          } else if (auto* group = dynamic_cast<net::ReplicaGroup*>(endpoint)) {
            group->ExportMetrics(snapshot);
          } else if (auto* sharded =
                         dynamic_cast<shard::ShardedEndpoint*>(endpoint)) {
            sharded->ExportMetrics(snapshot);
            for (size_t m = 0; m < sharded->NumShards(); ++m) {
              net::Endpoint* member = sharded->member(m);
              if (auto* http =
                      dynamic_cast<rpc::HttpSparqlEndpoint*>(member)) {
                http->ExportMetrics(snapshot);
              } else if (auto* member_group =
                             dynamic_cast<net::ReplicaGroup*>(member)) {
                member_group->ExportMetrics(snapshot);
              }
            }
          }
        }
        if (federation->query_cache() != nullptr) {
          federation->query_cache()->ExportMetrics(snapshot);
        }
        if (metered_engine != nullptr) {
          metered_engine->ExportMetrics(snapshot);  // Dictionary gauges.
        }
      });
  std::unique_ptr<rpc::HttpServer> stats_server;
  if (options.metrics_port >= 0) {
    rpc::HttpServerOptions stats_options;
    stats_options.port = static_cast<uint16_t>(options.metrics_port);
    stats_options.num_threads = 1;
    stats_options.server_name = "federator";
    stats_options.metrics = &metrics;
    stats_options.flight_recorder = &recorder;
    stats_server = std::make_unique<rpc::HttpServer>(nullptr, stats_options);
    Status started = stats_server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "cannot start stats listener: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "# metrics: %s/metrics\n",
                 stats_server->url().c_str());
  }

  // Read the query.
  std::string query_text;
  if (options.query_file.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    query_text = buffer.str();
  } else {
    std::ifstream in(options.query_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", options.query_file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    query_text = buffer.str();
  }
  if (query_text.empty()) {
    std::fprintf(stderr, "empty query\n");
    return 1;
  }

  // Build the engine.
  bool trace = !options.trace_file.empty();
  core::LusailOptions lusail_options;
  lusail_options.trace = trace;
  lusail_options.result_cache = options.cache_stats;
  if (options.retry_attempts > 0) {
    lusail_options.retry_policy =
        net::RetryPolicy::Standard(options.retry_attempts);
  }
  if (options.engine == "lade") lusail_options.enable_sape = false;
  core::LusailEngine lusail(federation.get(), lusail_options);
  metered_engine = &lusail;
  // Warm-load the engine dictionary snapshot: interned TermIds and
  // content hashes stay stable across restarts, keeping id-derived state
  // (persisted cache fingerprints, logged ids) meaningful.
  std::string dict_file =
      options.cache_file.empty() ? "" : options.cache_file + ".dict";
  if (!dict_file.empty()) {
    auto restored = lusail.dictionary()->LoadFromDisk(dict_file);
    if (restored.ok()) {
      std::fprintf(stderr, "# dictionary: warm-loaded %llu terms from %s\n",
                   static_cast<unsigned long long>(*restored),
                   dict_file.c_str());
    } else if (restored.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "# dictionary: ignoring snapshot %s: %s\n",
                   dict_file.c_str(),
                   restored.status().ToString().c_str());
    }
  }
  if (options.engine == "lusail" || options.engine == "lade") {
    // ID-space fast path for remote federations: HTTP responses parse
    // straight into the engine dictionary (SRJ -> IdTable) and reach the
    // executor with zero federator-side string rows. Baselines keep
    // string responses; replica groups keep them too (their inner
    // endpoints answer through the group, not directly).
    for (size_t i = 0; i < federation->size(); ++i) {
      if (auto* http = dynamic_cast<rpc::HttpSparqlEndpoint*>(
              federation->endpoint(i))) {
        http->set_parse_dictionary(lusail.dictionary());
      } else if (auto* sharded = dynamic_cast<shard::ShardedEndpoint*>(
                     federation->endpoint(i))) {
        // The gather site unions into the engine dictionary, and member
        // responses parse straight into it too, so scattered subquery
        // rows reach SAPE with zero re-encoding.
        sharded->set_parse_dictionary(lusail.dictionary());
        for (size_t m = 0; m < sharded->NumShards(); ++m) {
          if (auto* member_http = dynamic_cast<rpc::HttpSparqlEndpoint*>(
                  sharded->member(m))) {
            member_http->set_parse_dictionary(lusail.dictionary());
          }
        }
      }
    }
  }
  baselines::FedXOptions fedx_options;
  fedx_options.trace = trace;
  baselines::FedXEngine fedx(federation.get(), fedx_options);
  baselines::SplendidOptions splendid_options;
  splendid_options.trace = trace;
  baselines::SplendidEngine splendid(federation.get(), splendid_options);
  fed::FederatedEngine* engine = &lusail;
  if (options.engine == "fedx") {
    engine = &fedx;
  } else if (options.engine == "splendid") {
    splendid.BuildIndex();
    engine = &splendid;
  } else if (options.engine != "lusail" && options.engine != "lade") {
    std::fprintf(stderr, "unknown engine: %s\n", options.engine.c_str());
    return Usage();
  }

  if (options.explain) {
    auto report = obs::Explain(lusail, query_text);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    if (options.explain_json) {
      std::printf("%s\n", report->ToJson().Pretty().c_str());
    } else {
      std::fputs(report->ToText().c_str(), stdout);
    }
    // Streaming eligibility rides along: the same whole-query-mode test
    // --stream applies at execution time.
    if (auto parsed = sparql::ParseQuery(query_text); parsed.ok()) {
      std::string reason = StreamIneligibleReason(*parsed, *report);
      if (reason.empty()) {
        std::fprintf(stderr,
                     "# streaming: eligible (--stream delivers rows "
                     "incrementally)\n");
      } else {
        std::fprintf(stderr, "# streaming: not eligible (%s)\n",
                     reason.c_str());
      }
    }
    // Planning interns every constant the decomposer and probes touched;
    // the counts preview the id space the query would execute in.
    core::DictionaryStats dict_stats = lusail.dictionary()->GetStats();
    std::fprintf(stderr,
                 "# dictionary: %llu terms interned (%llu bytes) during "
                 "planning\n",
                 static_cast<unsigned long long>(dict_stats.terms),
                 static_cast<unsigned long long>(dict_stats.bytes));
    return 0;
  }

  if (options.stream) {
    auto parsed = sparql::ParseQuery(query_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    std::string reason;
    auto report = obs::Explain(lusail, query_text);
    if (!report.ok()) {
      reason = "plan unavailable: " + report.status().ToString();
    } else {
      reason = StreamIneligibleReason(*parsed, *report);
    }
    if (reason.empty()) {
      return RunStream(options, federation.get(), *parsed);
    }
    std::fprintf(stderr, "# stream: not eligible (%s); buffered fallback\n",
                 reason.c_str());
  }

  Stopwatch query_timer;
  auto result =
      engine->Execute(query_text, Deadline::AfterMillis(options.timeout_ms));
  {
    obs::FlightRecord record;
    record.query_hash = obs::QueryHashHex(query_text);
    record.total_ms = query_timer.ElapsedMillis();
    if (result.ok()) {
      const fed::ExecutionProfile& profile = result->profile;
      record.rows = result->table.NumRows();
      record.requests = profile.requests;
      record.hedged = profile.hedged_requests > 0;
      record.partial = profile.partial;
      record.total_ms = profile.total_ms;
      record.source_selection_ms = profile.source_selection_ms;
      record.analysis_ms = profile.analysis_ms;
      record.execution_ms = profile.execution_ms;
      record.network_ms = profile.network_ms;
      if (profile.trace != nullptr) record.trace_id = profile.trace->trace_id;
    } else {
      record.status = StatusCodeToString(result.status().code());
    }
    recorder.Record(std::move(record));
  }
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (options.format == "srj") {
    std::printf("%s\n", rpc::ResultTableToSrj(result->table).c_str());
  } else {
    std::fputs(result->table.ToTsv().c_str(), stdout);
  }
  std::fprintf(stderr, "# %zu rows (engine: %s)\n", result->table.NumRows(),
               engine->name().c_str());
  PrintProfile(result->profile);
  // One Prometheus-style line per shard counter, so scripts (and CI) can
  // assert on routing behavior without scraping a metrics port.
  for (const shard::ShardedEndpoint* sharded : sharded_endpoints) {
    shard::ShardedEndpointStats s = sharded->stats();
    const char* id = sharded->id().c_str();
    std::fprintf(stderr,
                 "# lusail_shard_queries_total{endpoint=\"%s\"} %llu\n"
                 "# lusail_shard_fanout_total{endpoint=\"%s\"} %llu\n"
                 "# lusail_shard_pruned_total{endpoint=\"%s\"} %llu\n"
                 "# lusail_shard_single_total{endpoint=\"%s\"} %llu\n"
                 "# lusail_shard_broadcast_total{endpoint=\"%s\"} %llu\n"
                 "# lusail_shard_partial_total{endpoint=\"%s\"} %llu\n",
                 id, static_cast<unsigned long long>(s.queries),
                 id, static_cast<unsigned long long>(s.fanout_requests),
                 id, static_cast<unsigned long long>(s.pruned_shards),
                 id, static_cast<unsigned long long>(s.single_shard_queries),
                 id, static_cast<unsigned long long>(s.broadcast_fallbacks),
                 id, static_cast<unsigned long long>(s.partial_queries));
  }
  if (engine == &lusail) {
    core::DictionaryStats dict_stats = lusail.dictionary()->GetStats();
    std::fprintf(
        stderr,
        "# dictionary: %llu terms (%llu bytes); encoded %llu cells "
        "(%.1f ms), decoded %llu cells (%.1f ms)\n",
        static_cast<unsigned long long>(dict_stats.terms),
        static_cast<unsigned long long>(dict_stats.bytes),
        static_cast<unsigned long long>(dict_stats.encode_terms),
        dict_stats.encode_seconds * 1e3,
        static_cast<unsigned long long>(dict_stats.decode_terms),
        dict_stats.decode_seconds * 1e3);
  }
  if (trace) {
    if (result->profile.trace == nullptr) {
      std::fprintf(stderr, "# no trace recorded (engine %s does not trace)\n",
                   engine->name().c_str());
    } else {
      std::ofstream out(options.trace_file);
      out << result->profile.trace->ToChromeJsonString() << "\n";
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n",
                     options.trace_file.c_str());
        return 1;
      }
      std::fprintf(stderr, "# trace written to %s (%zu spans)\n",
                   options.trace_file.c_str(),
                   result->profile.trace->spans.size());
    }
  }
  if (options.cache_stats) {
    std::fprintf(stderr, "# cache stats:\n%s\n",
                 shared_cache.ToJson().Pretty().c_str());
  }
  if (!options.cache_file.empty()) {
    Status saved = shared_cache.SaveToDisk(options.cache_file);
    if (saved.ok()) {
      std::fprintf(stderr, "# cache: snapshot saved to %s\n",
                   options.cache_file.c_str());
    } else {
      std::fprintf(stderr, "# cache: snapshot save failed: %s\n",
                   saved.ToString().c_str());
    }
  }
  if (!dict_file.empty()) {
    Status saved = lusail.dictionary()->SaveToDisk(dict_file);
    if (saved.ok()) {
      std::fprintf(stderr, "# dictionary: snapshot saved to %s\n",
                   dict_file.c_str());
    } else {
      std::fprintf(stderr, "# dictionary: snapshot save failed: %s\n",
                   saved.ToString().c_str());
    }
  }
  return 0;
}
