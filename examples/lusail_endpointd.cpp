// lusail_endpointd — serve one N-Triples partition as a SPARQL 1.1
// Protocol endpoint over HTTP.
//
// Usage:
//   lusail_endpointd --data <file.nt> [options]
//
// Options:
//   --data <file.nt>      the partition to serve (required)
//   --id <name>           endpoint id (default: the file stem)
//   --port <n>            TCP port (default 0 = pick an ephemeral port)
//   --bind <address>      bind address (default 127.0.0.1)
//   --threads <n>         worker threads (default 4)
//   --max-rows <n>        truncate results beyond n rows (default 0 = off;
//                         truncated responses carry X-Lusail-Truncated)
//   --latency none|local|geo   extra simulated latency (default none —
//                         a real server already has real latency)
//   --num-shards <n>      serve one shard of a sharded logical endpoint:
//                         keep only the triples whose subject the
//                         consistent-hash ring over n shards assigns to
//                         this process (requires --shard-index)
//   --shard-index <k>     which of the n shards this process serves
//                         (0-based). The ring is keyed by shard index
//                         only, so every process that agrees on n derives
//                         the same assignment as the federator's
//                         --shards routing — no shared state needed.
//   --cache-file <path>   crash-safe ASK-verdict cache: warm-load the
//                         snapshot at startup, memoize ASK verdicts
//                         while serving, and save the snapshot back on
//                         graceful shutdown. A restarted endpoint then
//                         answers repeated source-selection probes from
//                         the snapshot instead of re-evaluating them.
//   --slow-ms <n>         flight-recorder slow-query threshold: queries
//                         slower than n ms are logged as one-line JSON
//                         events to stderr (default 0 = off)
//   --log-json            log every completed query as one JSON line to
//                         stderr (the flight recorder's structured log)
//
// Telemetry (see DESIGN.md "Telemetry plane"):
//   GET /metrics        Prometheus text exposition (server, verdict
//                       cache, and ASK-cache counters)
//   GET /debug/queries  the last completed queries, newest first (?n=K)
//   GET /health         liveness + degraded state as JSON; 503 when the
//                       verdict-cache snapshot failed to load
//
// On startup it prints one machine-readable line to stdout:
//   READY <id> <port>
// so scripts (and the loopback tests) can scrape the ephemeral port.
// SIGINT/SIGTERM trigger a graceful drain. Query it with:
//   curl -s -X POST http://127.0.0.1:<port>/sparql \
//        -H 'Content-Type: application/sparql-query' \
//        --data 'SELECT * WHERE { ?s ?p ?o } LIMIT 3'

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <fstream>
#include <sstream>

#include "cache/cached_endpoint.h"
#include "cache/federation_cache.h"
#include "net/sparql_endpoint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "rdf/ntriples.h"
#include "rpc/http_server.h"
#include "shard/shard_map.h"
#include "store/triple_store.h"

namespace {

using namespace lusail;

int Usage() {
  std::fprintf(stderr,
               "usage: lusail_endpointd --data <file.nt> [--id <name>]\n"
               "                        [--port <n>] [--bind <address>]\n"
               "                        [--threads <n>] [--max-rows <n>]\n"
               "                        [--stream-batch-rows <n>]\n"
               "                        [--latency none|local|geo]\n"
               "                        [--num-shards <n> --shard-index <k>]\n"
               "                        [--cache-file <path>]\n"
               "                        [--slow-ms <n>] [--log-json]\n");
  return 2;
}

volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::string data_file;
  std::string id;
  std::string cache_file;
  rpc::HttpServerOptions server_options;
  std::string latency = "none";
  size_t num_shards = 0;
  long shard_index = -1;
  obs::FlightRecorderOptions recorder_options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--data") {
      if (!next(&data_file)) return Usage();
    } else if (arg == "--id") {
      if (!next(&id)) return Usage();
    } else if (arg == "--port") {
      if (!next(&value)) return Usage();
      server_options.port = static_cast<uint16_t>(std::strtoul(
          value.c_str(), nullptr, 10));
    } else if (arg == "--bind") {
      if (!next(&server_options.bind_address)) return Usage();
    } else if (arg == "--threads") {
      if (!next(&value)) return Usage();
      server_options.num_threads = std::strtoul(value.c_str(), nullptr, 10);
    } else if (arg == "--max-rows") {
      if (!next(&value)) return Usage();
      server_options.max_result_rows =
          std::strtoul(value.c_str(), nullptr, 10);
    } else if (arg == "--stream-batch-rows") {
      if (!next(&value)) return Usage();
      server_options.stream_batch_rows =
          std::strtoul(value.c_str(), nullptr, 10);
    } else if (arg == "--latency") {
      if (!next(&latency)) return Usage();
    } else if (arg == "--num-shards") {
      if (!next(&value)) return Usage();
      num_shards = std::strtoul(value.c_str(), nullptr, 10);
    } else if (arg == "--shard-index") {
      if (!next(&value)) return Usage();
      shard_index = static_cast<long>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--cache-file") {
      if (!next(&cache_file)) return Usage();
    } else if (arg == "--slow-ms") {
      if (!next(&value)) return Usage();
      recorder_options.slow_threshold_ms = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--log-json") {
      recorder_options.log_json = true;
    } else {
      if (arg != "--help" && arg != "-h") {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      }
      return Usage();
    }
  }
  if (data_file.empty()) return Usage();
  bool sharded = num_shards > 1 || shard_index >= 0;
  if (sharded && (num_shards < 1 || shard_index < 0 ||
                  static_cast<size_t>(shard_index) >= num_shards)) {
    std::fprintf(stderr,
                 "--num-shards/--shard-index must both be given with "
                 "0 <= index < shards\n");
    return Usage();
  }
  if (id.empty()) {
    id = std::filesystem::path(data_file).stem().string();
    if (sharded) id += "-shard" + std::to_string(shard_index);
  }

  auto store = std::make_unique<store::TripleStore>();
  if (sharded) {
    // Keep only this shard's slice: the same ring the federator's
    // --shards routing uses, so subject-routed subqueries always land on
    // the process that holds the data.
    std::ifstream in(data_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", data_file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    shard::ShardMap map = shard::ShardMap::HashRing(num_shards);
    size_t total = 0, kept = 0;
    std::string line;
    std::istringstream lines(text);
    while (std::getline(lines, line)) {
      rdf::TermTriple triple;
      bool has_triple = false;
      Status status = rdf::ParseNTriplesLine(line, &triple, &has_triple);
      if (!status.ok()) {
        std::fprintf(stderr, "cannot load %s: %s\n", data_file.c_str(),
                     status.ToString().c_str());
        return 1;
      }
      if (!has_triple) continue;
      ++total;
      if (map.ShardOfSubject(triple.subject) ==
          static_cast<size_t>(shard_index)) {
        store->Add(triple);
        ++kept;
      }
    }
    std::fprintf(stderr, "# %s: shard %ld/%zu kept %zu of %zu triples\n",
                 id.c_str(), shard_index, num_shards, kept, total);
  } else {
    Status loaded = store->LoadNTriplesFile(data_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", data_file.c_str(),
                   loaded.ToString().c_str());
      return 1;
    }
  }
  store->Freeze();
  size_t triples = store->size();

  net::LatencyModel model = net::LatencyModel::None();
  if (latency == "local") model = net::LatencyModel::LocalCluster();
  if (latency == "geo") model = net::LatencyModel::GeoDistributed();
  std::shared_ptr<net::Endpoint> endpoint =
      std::make_shared<net::SparqlEndpoint>(id, std::move(store), model);

  // Crash-safe ASK-verdict cache: warm-load the snapshot, then serve
  // through a memoizing wrapper so repeated source-selection probes skip
  // store evaluation entirely.
  cache::FederationCache verdict_cache;
  std::shared_ptr<cache::CachedAskEndpoint> cached;
  std::string cache_load_error;
  if (!cache_file.empty()) {
    auto restored = verdict_cache.LoadFromDisk(cache_file);
    if (restored.ok()) {
      std::fprintf(stderr, "# %s: warm-loaded %llu cached verdicts from %s\n",
                   id.c_str(),
                   static_cast<unsigned long long>(*restored),
                   cache_file.c_str());
    } else if (restored.status().code() != StatusCode::kNotFound) {
      // Corrupt or incompatible snapshots are discarded, never fatal: the
      // endpoint just starts cold and overwrites the file on shutdown —
      // but /health reports the degraded start until then.
      cache_load_error = restored.status().ToString();
      std::fprintf(stderr, "# %s: ignoring snapshot %s: %s\n", id.c_str(),
                   cache_file.c_str(), cache_load_error.c_str());
    }
    cached = std::make_shared<cache::CachedAskEndpoint>(endpoint,
                                                        &verdict_cache);
    endpoint = cached;
  }

  // Telemetry plane: registry-backed /metrics, a flight recorder behind
  // /debug/queries (and the JSON query log), and a /health probe that
  // reports a failed cache warm-load as degraded.
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(recorder_options);
  obs::ScopedCollector cache_metrics(
      &metrics, [&](obs::MetricsSnapshot* snapshot) {
        if (cache_file.empty()) return;
        verdict_cache.ExportMetrics(snapshot);
        if (cached != nullptr) cached->ExportMetrics(snapshot);
      });
  server_options.server_name = id;
  server_options.metrics = &metrics;
  server_options.flight_recorder = &recorder;
  server_options.health_probe = [&](obs::JsonValue* body) {
    body->Set("triples", triples);
    if (!cache_load_error.empty()) {
      body->Set("degraded", std::string("cache snapshot load failed: ") +
                                cache_load_error);
      return false;
    }
    return true;
  };

  rpc::HttpServer server(endpoint, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);

  std::fprintf(stderr, "# %s: %zu triples at %s\n", id.c_str(), triples,
               server.url().c_str());
  std::printf("READY %s %u\n", id.c_str(), server.port());
  std::fflush(stdout);

  // Serve until a signal arrives; the accept/worker threads do the work.
  // Sleeping in short slices keeps shutdown latency low without signal
  // plumbing (nanosleep returns early with EINTR on signal anyway).
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::fprintf(stderr, "# draining...\n");
  server.Stop();
  rpc::HttpServerStats stats = server.stats();
  std::fprintf(stderr,
               "# served %llu requests, %llu bytes out "
               "(%llu timed out, %llu cancelled)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.bytes_out),
               static_cast<unsigned long long>(stats.timed_out_queries),
               static_cast<unsigned long long>(stats.cancelled_queries));
  if (cached != nullptr) {
    std::fprintf(stderr, "# ask cache: %llu hits, %llu misses\n",
                 static_cast<unsigned long long>(cached->hits()),
                 static_cast<unsigned long long>(cached->misses()));
    Status saved = verdict_cache.SaveToDisk(cache_file);
    if (saved.ok()) {
      std::fprintf(stderr, "# ask cache: snapshot saved to %s\n",
                   cache_file.c_str());
    } else {
      std::fprintf(stderr, "# ask cache: snapshot save failed: %s\n",
                   saved.ToString().c_str());
    }
  }
  return 0;
}
