// Linked life-science data: the QFed-style federation (DrugBank,
// Diseasome, Sider, DailyMed) with real interlink structure. Shows how
// SAPE's cost model classifies subqueries as delayed vs non-delayed on a
// query with big-literal transfers, and how the delay threshold knob
// (the Figure 13 ablation) changes the execution.
//
//   ./build/examples/life_sciences

#include <cstdio>

#include "common/stopwatch.h"
#include "core/lusail_engine.h"
#include "workload/federation_builder.h"
#include "workload/qfed_generator.h"

int main() {
  using namespace lusail;

  workload::QFedGenerator generator{workload::QFedConfig()};
  auto federation = workload::BuildFederation(
      generator.GenerateAll(), net::LatencyModel::LocalCluster());
  std::printf(
      "Life-science federation: drugbank, diseasome, sider, dailymed.\n\n");

  // Analyze the big-literal query: which subqueries does LADE produce and
  // what does the cost model estimate for each?
  core::LusailEngine lusail(federation.get());
  std::string query = workload::QFedGenerator::C2P2B();
  auto analyzed = lusail.Analyze(query);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
    return 1;
  }
  std::printf("C2P2B decomposes into %zu subqueries:\n",
              analyzed->decomposition.subqueries.size());
  for (size_t i = 0; i < analyzed->decomposition.subqueries.size(); ++i) {
    const core::Subquery& sq = analyzed->decomposition.subqueries[i];
    std::printf("  SQ%zu  est. cardinality %8.0f  endpoints:", i + 1,
                sq.estimated_cardinality);
    for (int ep : sq.sources) {
      std::printf(" %s", federation->id(ep).c_str());
    }
    std::printf("\n       %s\n",
                sq.ToSparql(analyzed->query.where.triples).c_str());
  }

  // Execute the whole C2P2 family under each delay threshold.
  std::printf("\n%-9s %-12s %10s %10s %12s\n", "query", "threshold",
              "time(ms)", "requests", "bytesRecv");
  struct NamedThreshold {
    const char* name;
    core::DelayThreshold threshold;
  };
  const NamedThreshold kThresholds[] = {
      {"mu", core::DelayThreshold::kMu},
      {"mu+sigma", core::DelayThreshold::kMuSigma},
      {"mu+2sigma", core::DelayThreshold::kMu2Sigma},
      {"outliers", core::DelayThreshold::kOutliersOnly},
  };
  for (const auto& [label, text] :
       workload::QFedGenerator::BenchmarkQueries()) {
    for (const NamedThreshold& nt : kThresholds) {
      core::LusailOptions options;
      options.delay_threshold = nt.threshold;
      core::LusailEngine engine(federation.get(), options);
      Stopwatch timer;
      auto result = engine.Execute(text, Deadline::AfterMillis(60000));
      if (!result.ok()) continue;
      std::printf("%-9s %-12s %10.1f %10llu %12llu\n", label.c_str(),
                  nt.name, timer.ElapsedMillis(),
                  static_cast<unsigned long long>(result->profile.requests),
                  static_cast<unsigned long long>(
                      result->profile.bytes_received));
    }
  }
  return 0;
}
