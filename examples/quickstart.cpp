// Quickstart: the paper's running example, end to end.
//
// Builds the decentralized graph of Figure 1 (two universities behind two
// simulated SPARQL endpoints, with Tim's PhD degree interlinking EP2 to
// EP1), runs the federated query Q_a of Figure 2 through Lusail, and
// prints the analysis (global join variables, decomposition) along with
// the three answers the paper derives by hand.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/lusail_engine.h"
#include "workload/federation_builder.h"

int main() {
  using namespace lusail;

  // 1. Deploy the two endpoints of Figure 1 (no simulated latency here).
  auto federation = workload::BuildFederation(
      workload::Figure1Federation(), net::LatencyModel::None());
  std::printf("Federation: %zu endpoints (%s, %s)\n\n", federation->size(),
              federation->id(0).c_str(), federation->id(1).c_str());

  // 2. The federated query Q_a: students taking courses with their
  // advisors, plus the URI and address of the advisor's alma mater.
  std::string qa = workload::Figure2QueryQa();
  std::printf("Query Q_a:\n%s\n\n", qa.c_str());

  core::LusailEngine lusail(federation.get());

  // 3. Inspect what LADE discovers before executing.
  auto analyzed = lusail.Analyze(qa);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 analyzed.status().ToString().c_str());
    return 1;
  }
  std::printf("Global join variables (instance-level analysis):\n");
  for (const std::string& gjv : analyzed->gjvs.GjvNames()) {
    std::printf("  ?%s\n", gjv.c_str());
  }
  std::printf(
      "\n(?U is global because Tim's PhD is from MIT, which lives at the\n"
      "other endpoint; ?P because Ann advises but teaches no course.)\n\n");
  std::printf("Decomposition into %zu subqueries:\n",
              analyzed->decomposition.subqueries.size());
  for (size_t i = 0; i < analyzed->decomposition.subqueries.size(); ++i) {
    const core::Subquery& sq = analyzed->decomposition.subqueries[i];
    std::printf("  SQ%zu -> %s\n", i + 1,
                sq.ToSparql(analyzed->query.where.triples).c_str());
  }

  // 4. Execute and print the answers.
  auto result = lusail.Execute(qa);
  if (!result.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nAnswers (%zu rows — the paper's three):\n%s\n",
              result->table.NumRows(), result->table.ToTsv().c_str());
  std::printf(
      "Cost: %llu endpoint requests (%llu ASK probes), %llu bytes "
      "received.\n",
      static_cast<unsigned long long>(result->profile.requests),
      static_cast<unsigned long long>(result->profile.ask_requests),
      static_cast<unsigned long long>(result->profile.bytes_received));
  return 0;
}
