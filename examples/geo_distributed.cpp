// Geo-distributed federation: the same query, three network regimes.
// Demonstrates the paper's Section 5.3 observation — request-heavy
// engines degrade by orders of magnitude under WAN latency while Lusail's
// runtimes barely move — using the LUBM federation and query Q4.
//
//   ./build/examples/geo_distributed

#include <cstdio>

#include "baselines/fedx_engine.h"
#include "common/stopwatch.h"
#include "core/lusail_engine.h"
#include "net/sparql_endpoint.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace {

void SetLatency(lusail::fed::Federation* federation,
                const lusail::net::LatencyModel& model) {
  for (size_t i = 0; i < federation->size(); ++i) {
    auto* endpoint =
        dynamic_cast<lusail::net::SparqlEndpoint*>(federation->endpoint(i));
    if (endpoint != nullptr) endpoint->set_latency(model);
  }
}

}  // namespace

int main() {
  using namespace lusail;

  workload::LubmConfig config = workload::LubmConfig::Bench();
  config.num_universities = 2;
  workload::LubmGenerator generator(config);
  auto federation = workload::BuildFederation(generator.GenerateAll(),
                                              net::LatencyModel::None());

  struct Regime {
    const char* name;
    net::LatencyModel model;
  };
  const Regime kRegimes[] = {
      {"no-network", net::LatencyModel::None()},
      {"local-cluster", net::LatencyModel::LocalCluster()},
      {"geo-distributed", net::LatencyModel::GeoDistributed()},
  };

  std::string query = workload::LubmGenerator::Q4();
  std::printf("LUBM Q4 (advisor's alma-mater address) on 2 endpoints.\n\n");
  std::printf("%-16s %-8s %10s %10s %12s\n", "network", "engine", "time(ms)",
              "requests", "simNetMs");
  for (const Regime& regime : kRegimes) {
    SetLatency(federation.get(), regime.model);
    // Fresh engines per regime: cold caches, honest request counts.
    core::LusailEngine lusail(federation.get());
    baselines::FedXEngine fedx(federation.get());
    for (fed::FederatedEngine* engine :
         std::initializer_list<fed::FederatedEngine*>{&lusail, &fedx}) {
      Stopwatch timer;
      auto result = engine->Execute(query, Deadline::AfterMillis(120000));
      double ms = timer.ElapsedMillis();
      if (!result.ok()) {
        std::printf("%-16s %-8s %10s (%s)\n", regime.name,
                    engine->name().c_str(), "--",
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("%-16s %-8s %10.1f %10llu %12.1f\n", regime.name,
                  engine->name().c_str(), ms,
                  static_cast<unsigned long long>(result->profile.requests),
                  result->profile.network_ms);
    }
  }
  std::printf(
      "\nThe ranking is unchanged, but the gap widens with latency:\n"
      "each of FedX's sequential bound-join requests pays the RTT, while\n"
      "Lusail sends a handful of whole subqueries in parallel.\n");
  return 0;
}
