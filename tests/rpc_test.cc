// Tests for the rpc wire layer: SRJ round-trips (including the term
// zoo and ASK's boolean form), the HTTP server's protocol negatives
// against raw sockets, the HttpSparqlEndpoint client (keep-alive reuse,
// deadlines, status fidelity, dead-server handling), and full loopback
// LUBM federations running the engine over real TCP sockets — with the
// resilience / partial-results stack composed on top.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/lusail_engine.h"
#include "net/replica.h"
#include "net/resilience.h"
#include "net/sparql_endpoint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "rpc/http.h"
#include "rpc/http_server.h"
#include "rpc/http_sparql_endpoint.h"
#include "rpc/results_json.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

using rpc::HttpServer;
using rpc::HttpServerOptions;
using rpc::HttpSparqlEndpoint;
using rpc::ParseSrj;
using rpc::ResultTableToSrj;

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// Order-independent row fingerprints for result comparison.
std::vector<std::string> CanonicalRows(const sparql::ResultTable& table) {
  std::vector<std::string> rows;
  for (const auto& row : table.rows) {
    std::string s;
    for (const auto& cell : row) {
      s += cell.has_value() ? cell->ToString() : "UNDEF";
      s += "\x1f";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::unique_ptr<store::TripleStore> TinyStore() {
  auto store = std::make_unique<store::TripleStore>();
  for (int i = 0; i < 5; ++i) {
    store->Add(rdf::TermTriple{
        rdf::Term::Iri("http://ex/s" + std::to_string(i)),
        rdf::Term::Iri("http://ex/p"), rdf::Term::Integer(i)});
  }
  store->Freeze();
  return store;
}

std::shared_ptr<net::SparqlEndpoint> TinyEndpoint(const std::string& id) {
  return std::make_shared<net::SparqlEndpoint>(id, TinyStore(),
                                               net::LatencyModel::None());
}

/// Sends `request` as raw bytes to 127.0.0.1:`port` and returns whatever
/// the server writes back until it closes the connection.
std::string RawExchange(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

/// A TCP listener that accepts connections and never answers — the
/// canonical hung server for deadline tests.
class SilentServer {
 public:
  SilentServer() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr));
    ::listen(listen_fd_, 8);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
    acceptor_ = std::thread([this] {
      for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;
        accepted_.push_back(fd);  // Hold open, never respond.
      }
    });
  }
  ~SilentServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (acceptor_.joinable()) acceptor_.join();
    for (int fd : accepted_) ::close(fd);
  }
  uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<int> accepted_;
};

// ---------------------------------------------------------------------
// SRJ serializer/parser
// ---------------------------------------------------------------------

TEST(SrjTest, RoundTripsTermZoo) {
  sparql::ResultTable table;
  table.vars = {"a", "b", "c"};
  table.rows.push_back({rdf::Term::Iri("http://ex/thing?q=1&x=\"y\""),
                        rdf::Term::Literal("plain \"quoted\"\nline"),
                        rdf::Term::BlankNode("b0")});
  table.rows.push_back({rdf::Term::TypedLiteral("42",
                                                std::string(rdf::kXsdInteger)),
                        rdf::Term::LangLiteral("hallo", "de"),
                        std::nullopt});
  table.rows.push_back({std::nullopt, std::nullopt, std::nullopt});
  table.rows.push_back({rdf::Term::Double(2.5),
                        rdf::Term::Literal(""),
                        rdf::Term::Iri("http://ex/unicode/\xC3\xA9")});

  Result<sparql::ResultTable> back = ParseSrj(ResultTableToSrj(table));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->vars, table.vars);
  ASSERT_EQ(back->rows.size(), table.rows.size());
  // Exact (ordered) round trip, cell by cell.
  for (size_t r = 0; r < table.rows.size(); ++r) {
    for (size_t c = 0; c < table.vars.size(); ++c) {
      const auto& want = table.rows[r][c];
      const auto& got = back->rows[r][c];
      ASSERT_EQ(want.has_value(), got.has_value()) << "row " << r;
      if (want.has_value()) {
        EXPECT_EQ(want->ToString(), got->ToString()) << "row " << r;
      }
    }
  }
}

TEST(SrjTest, EmptyStringLiteralRoundTripsAsBound) {
  // "" is a real RDF literal, distinct from an unbound cell; the codec
  // must keep the binding present with an empty lexical form, not drop
  // it into nullopt on either leg of the round trip.
  sparql::ResultTable table;
  table.vars = {"x", "y"};
  table.rows.push_back({rdf::Term::Literal(""), std::nullopt});
  Result<sparql::ResultTable> back = ParseSrj(ResultTableToSrj(table));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->rows.size(), 1u);
  ASSERT_TRUE(back->rows[0][0].has_value());
  EXPECT_TRUE(back->rows[0][0]->is_literal());
  EXPECT_EQ(back->rows[0][0]->lexical(), "");
  EXPECT_TRUE(back->rows[0][0]->lang().empty());
  EXPECT_FALSE(back->rows[0][1].has_value());
}

TEST(SrjTest, NonEmptyLanguageTagWinsOverDatatype) {
  // Lax producers emit both xml:lang and datatype on one binding. The
  // SPARQL data model says a language-tagged literal's datatype is
  // implied (rdf:langString), so a non-empty tag takes precedence.
  Result<sparql::ResultTable> parsed = ParseSrj(
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":"
      "[{\"x\":{\"type\":\"literal\",\"value\":\"bonjour\","
      "\"xml:lang\":\"fr\","
      "\"datatype\":\"http://www.w3.org/2001/XMLSchema#string\"}}]}}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->rows.size(), 1u);
  ASSERT_TRUE(parsed->rows[0][0].has_value());
  EXPECT_EQ(parsed->rows[0][0]->lang(), "fr");
  EXPECT_EQ(parsed->rows[0][0]->lexical(), "bonjour");
  EXPECT_TRUE(parsed->rows[0][0]->datatype().empty());
}

TEST(SrjTest, EmptyLanguageTagDoesNotShadowDatatype) {
  // Regression: a present-but-empty xml:lang used to shadow the
  // datatype, silently turning typed literals into plain ones.
  Result<sparql::ResultTable> parsed = ParseSrj(
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":"
      "[{\"x\":{\"type\":\"literal\",\"value\":\"42\",\"xml:lang\":\"\","
      "\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\"}}]}}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->rows.size(), 1u);
  ASSERT_TRUE(parsed->rows[0][0].has_value());
  EXPECT_TRUE(parsed->rows[0][0]->lang().empty());
  EXPECT_EQ(parsed->rows[0][0]->datatype(),
            "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ(parsed->rows[0][0]->lexical(), "42");
}

TEST(SrjTest, RoundTripsAskBooleanForm) {
  // ASK true: zero columns, one row.
  sparql::ResultTable yes;
  yes.rows.push_back({});
  std::string yes_srj = ResultTableToSrj(yes);
  EXPECT_NE(yes_srj.find("\"boolean\":true"), std::string::npos) << yes_srj;
  Result<sparql::ResultTable> yes_back = ParseSrj(yes_srj);
  ASSERT_TRUE(yes_back.ok());
  EXPECT_TRUE(yes_back->vars.empty());
  EXPECT_EQ(yes_back->rows.size(), 1u);

  // ASK false: zero columns, zero rows.
  sparql::ResultTable no;
  std::string no_srj = ResultTableToSrj(no);
  EXPECT_NE(no_srj.find("\"boolean\":false"), std::string::npos) << no_srj;
  Result<sparql::ResultTable> no_back = ParseSrj(no_srj);
  ASSERT_TRUE(no_back.ok());
  EXPECT_TRUE(no_back->vars.empty());
  EXPECT_EQ(no_back->rows.size(), 0u);
}

TEST(SrjTest, RejectsMalformedDocuments) {
  const char* cases[] = {
      "",                                     // empty
      "not json at all",                      // garbage
      "[1,2,3]",                              // wrong root type
      "{}",                                   // no head
      "{\"head\":{\"vars\":[\"x\"]}}",        // no results/boolean
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{}}",          // no bindings
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":42}}",
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":"
      "[{\"x\":{\"type\":\"warp\",\"value\":\"v\"}}]}}",  // unknown type
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":"
      "[{\"x\":{\"type\":\"uri\"}}]}}",       // term without value
      "{\"head\":{},\"boolean\":\"yes\"}",    // non-boolean boolean
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[",  // cut off
  };
  for (const char* text : cases) {
    Result<sparql::ResultTable> parsed = ParseSrj(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
  }
}

// ---------------------------------------------------------------------
// HTTP server protocol negatives (raw sockets)
// ---------------------------------------------------------------------

class HttpWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HttpServerOptions options;
    options.limits.max_header_bytes = 1024;  // Small enough to trip below.
    server_ = std::make_unique<HttpServer>(TinyEndpoint("EP"), options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpWireTest, MalformedRequestLineIs400) {
  std::string response =
      RawExchange(server_->port(), "THIS IS NOT HTTP\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
}

TEST_F(HttpWireTest, UnknownRouteIs404) {
  std::string response = RawExchange(
      server_->port(),
      "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos) << response;
  EXPECT_NE(response.find("NotFound"), std::string::npos) << response;
}

TEST_F(HttpWireTest, GetOnSparqlRouteIs405) {
  std::string response = RawExchange(
      server_->port(),
      "GET /sparql HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos) << response;
  EXPECT_NE(response.find("Allow: POST"), std::string::npos) << response;
}

TEST_F(HttpWireTest, WrongContentTypeIs415) {
  std::string body = "{\"not\":\"sparql\"}";
  std::string response = RawExchange(
      server_->port(),
      "POST /sparql HTTP/1.1\r\nHost: x\r\nContent-Type: application/json"
      "\r\nContent-Length: " + std::to_string(body.size()) +
      "\r\nConnection: close\r\n\r\n" + body);
  EXPECT_NE(response.find("HTTP/1.1 415"), std::string::npos) << response;
}

TEST_F(HttpWireTest, OversizedHeadersAre413) {
  std::string big(4096, 'x');  // Exceeds the 1024-byte header limit.
  std::string response = RawExchange(
      server_->port(),
      "POST /sparql HTTP/1.1\r\nHost: x\r\nX-Padding: " + big +
      "\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos) << response;
}

TEST_F(HttpWireTest, HealthRouteReportsEndpointId) {
  std::string response = RawExchange(
      server_->port(),
      "GET /health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("\"endpoint\":\"EP\""), std::string::npos)
      << response;
  EXPECT_GT(server_->stats().connections_accepted, 0u);
}

// ---------------------------------------------------------------------
// HttpSparqlEndpoint client
// ---------------------------------------------------------------------

class HttpEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    direct_ = TinyEndpoint("EP");
    server_ = std::make_unique<HttpServer>(direct_);
    ASSERT_TRUE(server_->Start().ok());
    remote_ = std::make_unique<HttpSparqlEndpoint>("EP", "127.0.0.1",
                                                   server_->port());
  }
  void TearDown() override { server_->Stop(); }

  std::shared_ptr<net::SparqlEndpoint> direct_;
  std::unique_ptr<HttpServer> server_;
  std::unique_ptr<HttpSparqlEndpoint> remote_;
};

TEST_F(HttpEndpointTest, SelectMatchesDirectEndpoint) {
  const std::string query =
      "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o } ORDER BY ?s";
  Result<net::QueryResponse> direct = direct_->Query(query);
  Result<net::QueryResponse> remote = remote_->Query(query);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->table.vars, direct->table.vars);
  EXPECT_EQ(CanonicalRows(remote->table), CanonicalRows(direct->table));
  EXPECT_EQ(remote->table.rows.size(), 5u);
  EXPECT_TRUE(remote->transport.over_network);
  EXPECT_GT(remote->transport.wire_bytes_sent, 0u);
  EXPECT_GT(remote->transport.wire_bytes_received, 0u);
  EXPECT_FALSE(direct->transport.over_network);
}

TEST_F(HttpEndpointTest, AskTravelsAsBooleanForm) {
  Result<net::QueryResponse> yes =
      remote_->Query("ASK { <http://ex/s0> <http://ex/p> ?o }");
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  EXPECT_TRUE(yes->table.vars.empty());
  EXPECT_EQ(yes->table.rows.size(), 1u);

  Result<net::QueryResponse> no =
      remote_->Query("ASK { <http://ex/absent> <http://ex/p> ?o }");
  ASSERT_TRUE(no.ok()) << no.status().ToString();
  EXPECT_TRUE(no->table.vars.empty());
  EXPECT_EQ(no->table.rows.size(), 0u);
}

TEST_F(HttpEndpointTest, KeepAliveReusesTheConnection) {
  const std::string query = "SELECT ?s WHERE { ?s <http://ex/p> ?o }";
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(remote_->Query(query).ok());
  }
  rpc::HttpClientStats stats = remote_->stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.connections_opened, 1u);
  EXPECT_EQ(stats.connections_reused, 2u);

  // Reuse is visible in the per-response transport info too.
  Result<net::QueryResponse> again = remote_->Query(query);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->transport.reused_connection);
}

TEST_F(HttpEndpointTest, ParseErrorsSurviveTheWire) {
  Result<net::QueryResponse> direct = direct_->Query("SELEKT garbage !!");
  Result<net::QueryResponse> remote = remote_->Query("SELEKT garbage !!");
  ASSERT_FALSE(direct.ok());
  ASSERT_FALSE(remote.ok());
  // The exact status code crosses the wire via the error body, so the
  // remote failure classifies (and retries) exactly like the local one.
  EXPECT_EQ(remote.status().code(), direct.status().code());
  EXPECT_EQ(server_->stats().failed_queries, 1u);
}

TEST_F(HttpEndpointTest, DeadlineExpiresAgainstASilentServer) {
  SilentServer silent;
  HttpSparqlEndpoint hung("HUNG", "127.0.0.1", silent.port());
  Stopwatch timer;
  Result<net::QueryResponse> response = hung.QueryWithDeadline(
      "SELECT ?s WHERE { ?s ?p ?o }", Deadline::AfterMillis(200));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kTimeout)
      << response.status().ToString();
  // It honored the deadline rather than the 30s default.
  EXPECT_LT(timer.ElapsedMillis(), 5000.0);
}

TEST_F(HttpEndpointTest, StoppedServerBecomesUnavailable) {
  const std::string query = "SELECT ?s WHERE { ?s <http://ex/p> ?o }";
  ASSERT_TRUE(remote_->Query(query).ok());  // Pools a live connection.
  server_->Stop();
  Result<net::QueryResponse> after = remote_->Query(query);
  ASSERT_FALSE(after.ok());
  // A transport-level failure must classify as retryable unavailability,
  // never hang and never poison later calls.
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable)
      << after.status().ToString();
}

TEST_F(HttpEndpointTest, TruncationCapAppliesRemoteRowLimit) {
  HttpServerOptions capped_options;
  capped_options.max_result_rows = 2;
  HttpServer capped(direct_, capped_options);
  ASSERT_TRUE(capped.Start().ok());
  HttpSparqlEndpoint client("EP", "127.0.0.1", capped.port());
  Result<net::QueryResponse> response =
      client.Query("SELECT ?s WHERE { ?s <http://ex/p> ?o }");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->table.rows.size(), 2u);
  EXPECT_EQ(capped.stats().truncated_results, 1u);
  capped.Stop();
}

// ---------------------------------------------------------------------
// Loopback federation: the engine over real TCP sockets
// ---------------------------------------------------------------------

/// Three LUBM universities, each served by its own HttpServer on a
/// loopback port, plus the equivalent in-process federation for
/// row-identity checks.
class LoopbackFederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::LubmConfig config = workload::LubmConfig::Small();
    config.num_universities = 3;
    std::vector<workload::EndpointSpec> specs =
        workload::LubmGenerator(config).GenerateAll();

    in_process_ = workload::BuildFederation(specs, net::LatencyModel::None());

    for (const auto& spec : specs) {
      auto store = std::make_unique<store::TripleStore>();
      for (const auto& triple : spec.triples) store->Add(triple);
      store->Freeze();
      auto endpoint = std::make_shared<net::SparqlEndpoint>(
          spec.id, std::move(store), net::LatencyModel::None());
      auto server = std::make_unique<HttpServer>(endpoint);
      ASSERT_TRUE(server->Start().ok());
      remote_.Add(std::make_shared<HttpSparqlEndpoint>(
          spec.id, "127.0.0.1", server->port()));
      servers_.push_back(std::move(server));
    }
  }
  void TearDown() override {
    for (auto& server : servers_) server->Stop();
  }

  std::unique_ptr<fed::Federation> in_process_;
  fed::Federation remote_;
  std::vector<std::unique_ptr<HttpServer>> servers_;
};

TEST_F(LoopbackFederationTest, LubmQueriesAreRowIdentical) {
  core::LusailEngine local_engine(in_process_.get());
  core::LusailEngine remote_engine(&remote_);
  const std::string queries[] = {workload::LubmGenerator::QueryQa(),
                                 workload::LubmGenerator::Q1()};
  for (const std::string& query : queries) {
    Result<fed::FederatedResult> local = local_engine.Execute(query);
    Result<fed::FederatedResult> remote = remote_engine.Execute(query);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_GT(remote->table.rows.size(), 0u);
    EXPECT_EQ(CanonicalRows(remote->table), CanonicalRows(local->table));
  }
}

TEST_F(LoopbackFederationTest, ResilienceAndTracingComposeOverTheWire) {
  core::LusailOptions options;
  options.retry_policy = net::RetryPolicy::Standard(3);
  options.trace = true;
  core::LusailEngine engine(&remote_, options);
  Result<fed::FederatedResult> result =
      engine.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->profile.trace, nullptr);

  // Request spans carry the physical transport annotations.
  size_t annotated = 0;
  for (const auto& span : result->profile.trace->spans) {
    for (const auto& annotation : span.annotations) {
      if (annotation.key == "net.wire_bytes_received") ++annotated;
    }
  }
  EXPECT_GT(annotated, 0u);
}

TEST_F(LoopbackFederationTest, KilledServerDegradesToPartialResults) {
  // Baseline: the exact answer while all three servers are up.
  core::LusailEngine exact_engine(&remote_);
  Result<fed::FederatedResult> exact =
      exact_engine.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  std::vector<std::string> exact_rows = CanonicalRows(exact->table);

  servers_[2]->Stop();  // Kill one university.

  // Without degradation the query must fail loudly, not hang.
  core::LusailOptions strict;
  strict.retry_policy = net::RetryPolicy::Standard(2);
  core::LusailEngine strict_engine(&remote_, strict);
  Result<fed::FederatedResult> failed =
      strict_engine.Execute(workload::LubmGenerator::QueryQa());
  EXPECT_FALSE(failed.ok());

  // With partial results the survivors' contribution comes back, flagged
  // as partial, and is a subset of the exact answer.
  core::LusailOptions degraded;
  degraded.retry_policy = net::RetryPolicy::Standard(2);
  degraded.partial_results = true;
  core::LusailEngine degraded_engine(&remote_, degraded);
  Result<fed::FederatedResult> partial =
      degraded_engine.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial->profile.partial);
  EXPECT_FALSE(partial->profile.failed_endpoint_ids.empty());
  for (const std::string& row : CanonicalRows(partial->table)) {
    EXPECT_TRUE(std::binary_search(exact_rows.begin(), exact_rows.end(), row))
        << "partial result invented row " << row;
  }
}

TEST_F(LoopbackFederationTest, MidQueryServerKillTerminatesCleanly) {
  core::LusailOptions options;
  options.retry_policy = net::RetryPolicy::Standard(2);
  options.partial_results = true;
  core::LusailEngine engine(&remote_, options);

  // Exercise the race from both sides a few times: the kill can land
  // during source selection, COUNT probes, or subquery execution. Any
  // outcome is acceptable except hanging or crashing; an ok result must
  // not invent rows.
  core::LusailEngine exact_engine(&remote_);
  Result<fed::FederatedResult> exact =
      exact_engine.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(exact.ok());
  std::vector<std::string> exact_rows = CanonicalRows(exact->table);

  std::thread killer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    servers_[1]->Stop();
  });
  Result<fed::FederatedResult> result = engine.Execute(
      workload::LubmGenerator::QueryQa(), Deadline::AfterMillis(20000));
  killer.join();
  if (result.ok()) {
    for (const std::string& row : CanonicalRows(result->table)) {
      EXPECT_TRUE(
          std::binary_search(exact_rows.begin(), exact_rows.end(), row))
          << "invented row " << row;
    }
  } else {
    // A loud, classified failure is fine too.
    EXPECT_NE(result.status().code(), StatusCode::kOk);
  }
}

// ---------------------------------------------------------------------
// Deadline propagation and cooperative cancellation over the wire
// ---------------------------------------------------------------------

/// An endpoint whose evaluation is expensive but materializes nothing:
/// a three-way cross product over `n` triples whose final FILTER
/// references all three object variables (so it runs at the innermost
/// enumeration step and rejects every candidate). n = 400 gives 6.4e7
/// filter evaluations — multiple seconds of evaluation, zero rows.
std::shared_ptr<net::SparqlEndpoint> CrossProductEndpoint(
    const std::string& id, int n = 400) {
  auto store = std::make_unique<store::TripleStore>();
  for (int i = 0; i < n; ++i) {
    store->Add(rdf::TermTriple{
        rdf::Term::Iri("http://ex/s" + std::to_string(i)),
        rdf::Term::Iri("http://ex/p"), rdf::Term::Integer(i)});
  }
  store->Freeze();
  return std::make_shared<net::SparqlEndpoint>(id, std::move(store),
                                               net::LatencyModel::None());
}

const char kSlowQuery[] =
    "SELECT ?a ?b ?c WHERE { ?a <http://ex/p> ?x . ?b <http://ex/p> ?y . "
    "?c <http://ex/p> ?z . FILTER(?x + ?y + ?z < 0) }";

/// The tentpole e2e: a 100 ms client deadline against a multi-second
/// evaluation. The client's budget crosses the wire as
/// X-Lusail-Deadline-Ms, the server derives a local deadline from it,
/// and the evaluator abandons the enumeration within one check chunk of
/// expiry — visible as the server's timed_out_queries counter rising
/// shortly after the deadline, with no rows ever materialized.
TEST(HttpDeadlineTest, ClientDeadlineStopsServerEvaluation) {
  std::shared_ptr<net::SparqlEndpoint> slow = CrossProductEndpoint("SLOW");
  HttpServer server(slow);
  ASSERT_TRUE(server.Start().ok());
  HttpSparqlEndpoint client("SLOW", "127.0.0.1", server.port());

  Stopwatch timer;
  Result<net::QueryResponse> response =
      client.QueryWithDeadline(kSlowQuery, Deadline::AfterMillis(100));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kTimeout)
      << response.status().ToString();

  // The server must abandon evaluation shortly after the 100 ms budget,
  // not run the multi-second query to completion.
  bool abandoned = false;
  while (timer.ElapsedMillis() < 5000.0) {
    if (server.stats().timed_out_queries >= 1) {
      abandoned = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(abandoned);
  EXPECT_LT(timer.ElapsedMillis(), 250.0)
      << "server kept evaluating past the propagated deadline";

  // Cancelled evaluation materialized nothing (SparqlEndpoint counts
  // requests and rows only on success).
  EXPECT_EQ(slow->stats().rows_out, 0u);
  EXPECT_EQ(slow->stats().requests, 0u);
  EXPECT_EQ(server.stats().failed_queries, 1u);
  server.Stop();
}

/// A client that hangs up mid-evaluation must not keep a server core
/// busy: the disconnect watchdog notices EOF on the connection and fires
/// the in-flight token, counted as cancelled_queries.
TEST(HttpDeadlineTest, ClientDisconnectCancelsInFlightEvaluation) {
  std::shared_ptr<net::SparqlEndpoint> slow = CrossProductEndpoint("SLOW");
  HttpServer server(slow);
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string body(kSlowQuery);
  std::string request =
      "POST /sparql HTTP/1.1\r\nHost: loopback\r\n"
      "Content-Type: application/sparql-query\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  // Wait until the server has started evaluating, then hang up.
  Stopwatch timer;
  while (server.stats().requests < 1 && timer.ElapsedMillis() < 5000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().requests, 1u);
  ::close(fd);

  bool cancelled = false;
  while (timer.ElapsedMillis() < 5000.0) {
    if (server.stats().cancelled_queries >= 1) {
      cancelled = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(cancelled) << "disconnect did not cancel the evaluation";
  EXPECT_EQ(slow->stats().rows_out, 0u);
  server.Stop();
}

/// Without a deadline header the server evaluates under an infinite
/// deadline — the header, not a server-side default, carries the budget.
TEST(HttpDeadlineTest, NoHeaderMeansNoServerDeadline) {
  HttpServer server(TinyEndpoint("EP"));
  ASSERT_TRUE(server.Start().ok());
  std::string body = "SELECT ?s WHERE { ?s <http://ex/p> ?o }";
  std::string response = RawExchange(
      server.port(),
      "POST /sparql HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "Content-Type: application/sparql-query\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_EQ(server.stats().timed_out_queries, 0u);
  server.Stop();
}

/// An already-expired budget answers 504 before evaluation starts, with
/// the kTimeout code in the body so the client reconstructs the status.
TEST(HttpDeadlineTest, ExpiredBudgetIs504BeforeEvaluation) {
  std::shared_ptr<net::SparqlEndpoint> slow = CrossProductEndpoint("SLOW");
  HttpServer server(slow);
  ASSERT_TRUE(server.Start().ok());
  std::string body(kSlowQuery);
  std::string response = RawExchange(
      server.port(),
      "POST /sparql HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "X-Lusail-Deadline-Ms: 0\r\n"
      "Content-Type: application/sparql-query\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(response.find("504"), std::string::npos) << response;
  EXPECT_NE(response.find("Timeout"), std::string::npos) << response;
  EXPECT_EQ(slow->stats().requests, 0u);
  server.Stop();
}

/// More concurrent connections than server workers: the regression test
/// for thread-per-connection starvation (workers parked on idle
/// keep-alive connections while new connections waited out the client's
/// read deadline).
TEST(HttpServerConcurrencyTest, MoreConnectionsThanWorkersMakeProgress) {
  HttpServerOptions options;
  options.num_threads = 2;
  HttpServer server(TinyEndpoint("EP"), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &failures] {
      HttpSparqlEndpoint client("EP", "127.0.0.1", server.port());
      for (int q = 0; q < 3; ++q) {
        Result<net::QueryResponse> response = client.QueryWithDeadline(
            "SELECT ?s WHERE { ?s <http://ex/p> ?o }",
            Deadline::AfterMillis(10000));
        if (!response.ok() || response->table.rows.size() != 5) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

// ---------------------------------------------------------------------
// Trace propagation over the wire
// ---------------------------------------------------------------------

/// Extracts one header value from a raw HTTP response string.
std::string HeaderValue(const std::string& response, const std::string& name) {
  std::string needle = name + ": ";
  size_t pos = response.find(needle);
  if (pos == std::string::npos) return "";
  size_t end = response.find("\r\n", pos);
  return response.substr(pos + needle.size(), end - pos - needle.size());
}

TEST(TracePropagationTest, ServerAdoptsTraceIdAndReturnsItsSubtree) {
  HttpServer server(TinyEndpoint("EP"));
  ASSERT_TRUE(server.Start().ok());
  std::string trace_id = obs::GenerateTraceId();
  std::string body = "SELECT ?s WHERE { ?s <http://ex/p> ?o }";
  std::string response = RawExchange(
      server.port(),
      "POST /sparql HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "X-Lusail-Trace-Id: " + trace_id + "\r\n"
      "X-Lusail-Parent-Span: 17\r\n"
      "Content-Type: application/sparql-query\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body);
  ASSERT_NE(response.find("200"), std::string::npos) << response;
  std::string wire = HeaderValue(response, "X-Lusail-Trace");
  ASSERT_FALSE(wire.empty()) << response;
  auto parsed = obs::Trace::FromWireString(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->trace_id, trace_id);
  ASSERT_GE(parsed->spans.size(), 2u);  // serve + evaluate.
  // The serve root records the client's parent span id for debugging.
  bool found_parent_annotation = false;
  for (const auto& annotation : parsed->spans[0].annotations) {
    if (annotation.key == "client_parent_span" && annotation.value == "17") {
      found_parent_annotation = true;
    }
  }
  EXPECT_TRUE(found_parent_annotation);
  // The server identified its process for per-process trace tracks.
  ASSERT_FALSE(parsed->processes.empty());
  EXPECT_NE(parsed->processes[0].second.find("endpointd/"),
            std::string::npos);
  server.Stop();
}

TEST(TracePropagationTest, MalformedTraceIdFallsBackToAFreshOne) {
  HttpServer server(TinyEndpoint("EP"));
  ASSERT_TRUE(server.Start().ok());
  std::string body = "SELECT ?s WHERE { ?s <http://ex/p> ?o }";
  std::string response = RawExchange(
      server.port(),
      "POST /sparql HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "X-Lusail-Trace-Id: NOT-A-TRACE-ID\r\n"
      "Content-Type: application/sparql-query\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body);
  std::string wire = HeaderValue(response, "X-Lusail-Trace");
  ASSERT_FALSE(wire.empty()) << response;
  auto parsed = obs::Trace::FromWireString(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(obs::IsValidTraceId(parsed->trace_id)) << parsed->trace_id;
  EXPECT_NE(parsed->trace_id, "NOT-A-TRACE-ID");
  server.Stop();
}

TEST(TracePropagationTest, UntracedRequestsCarryNoTraceHeader) {
  HttpServer server(TinyEndpoint("EP"));
  ASSERT_TRUE(server.Start().ok());
  std::string body = "SELECT ?s WHERE { ?s <http://ex/p> ?o }";
  std::string response = RawExchange(
      server.port(),
      "POST /sparql HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "Content-Type: application/sparql-query\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body);
  ASSERT_NE(response.find("200"), std::string::npos);
  EXPECT_EQ(response.find("X-Lusail-Trace:"), std::string::npos);
  server.Stop();
}

TEST(TracePropagationTest, ClientGraftsServerSubtreeUnderItsRequestSpan) {
  HttpServer server(TinyEndpoint("EP"));
  ASSERT_TRUE(server.Start().ok());
  HttpSparqlEndpoint client("EP", "127.0.0.1", server.port());

  auto tracer = std::make_shared<obs::Tracer>();
  tracer->set_trace_id(obs::GenerateTraceId());
  obs::SpanId request_span = tracer->StartSpan("request", "request");
  {
    obs::TraceContext context;
    context.tracer = tracer;
    context.trace_id = tracer->trace_id();
    context.parent = request_span;
    obs::TraceContextScope scope(context);
    auto response = client.QueryWithDeadline(
        "SELECT ?s WHERE { ?s <http://ex/p> ?o }",
        Deadline::AfterMillis(10000));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  tracer->EndSpan(request_span);

  obs::Trace merged = tracer->Snapshot();
  std::vector<const obs::Span*> servers = merged.ByCategory("server");
  ASSERT_GE(servers.size(), 2u);  // Grafted serve + evaluate spans.
  // The grafted serve root hangs under the client's request span and is
  // labelled with the endpoint that served it.
  const obs::Span* serve = nullptr;
  for (const obs::Span* span : servers) {
    if (span->parent == request_span) serve = span;
  }
  ASSERT_NE(serve, nullptr);
  bool served_by = false;
  for (const auto& annotation : serve->annotations) {
    if (annotation.key == "served_by" && annotation.value == "EP") {
      served_by = true;
    }
  }
  EXPECT_TRUE(served_by);
  server.Stop();
}

TEST(TracePropagationTest, OversizedSubtreeIsTruncatedNotDropped) {
  HttpServerOptions options;
  options.max_trace_header_bytes = 220;  // Too small for serve + evaluate.
  HttpServer server(TinyEndpoint("EP"), options);
  ASSERT_TRUE(server.Start().ok());
  HttpSparqlEndpoint client("EP", "127.0.0.1", server.port());

  auto tracer = std::make_shared<obs::Tracer>();
  tracer->set_trace_id(obs::GenerateTraceId());
  obs::SpanId request_span = tracer->StartSpan("request", "request");
  {
    obs::TraceContext context;
    context.tracer = tracer;
    context.trace_id = tracer->trace_id();
    context.parent = request_span;
    obs::TraceContextScope scope(context);
    auto response = client.QueryWithDeadline(
        "SELECT ?s WHERE { ?s <http://ex/p> ?o }",
        Deadline::AfterMillis(10000));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  tracer->EndSpan(request_span);

  // The grafted root survived and is flagged as a cut subtree.
  obs::Trace merged = tracer->Snapshot();
  const obs::Span* serve = nullptr;
  for (const obs::Span& span : merged.spans) {
    if (span.parent == request_span && span.category == "server") {
      serve = &span;
    }
  }
  ASSERT_NE(serve, nullptr) << "truncation dropped the whole subtree";
  bool marked = false;
  for (const auto& annotation : serve->annotations) {
    if (annotation.key == "trace.truncated" && annotation.value == "true") {
      marked = true;
    }
  }
  EXPECT_TRUE(marked);
  server.Stop();
}

TEST_F(LoopbackFederationTest, FederatedTraceMergesServerSubtrees) {
  core::LusailOptions options;
  options.trace = true;
  core::LusailEngine engine(&remote_, options);
  Result<fed::FederatedResult> result =
      engine.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->profile.trace, nullptr);
  const obs::Trace& trace = *result->profile.trace;

  // The query got a wire-grade trace id, and the grafted server
  // subtrees brought their endpointd process identities with them. (In
  // this loopback test both sides share one pid, so the endpointd entry
  // shadows the federator's; the CI e2e asserts >= 2 distinct pids with
  // real processes.)
  EXPECT_TRUE(obs::IsValidTraceId(trace.trace_id)) << trace.trace_id;
  bool endpointd_process = false;
  for (const auto& [pid, name] : trace.processes) {
    if (name.find("endpointd/") != std::string::npos) {
      endpointd_process = true;
    }
  }
  EXPECT_TRUE(endpointd_process);

  // Server-side spans were grafted, and every one of them reaches a
  // local span through its parent chain — no orphans in the merged tree.
  std::vector<const obs::Span*> servers = trace.ByCategory("server");
  ASSERT_GT(servers.size(), 0u);
  for (const obs::Span* span : servers) {
    const obs::Span* cursor = span;
    int hops = 0;
    while (cursor->parent != 0 && hops++ < 32) {
      cursor = trace.Find(cursor->parent);
      ASSERT_NE(cursor, nullptr) << "orphaned server span " << span->name;
    }
    EXPECT_EQ(cursor->parent, 0u);
    EXPECT_EQ(cursor->category, "query")
        << "server span " << span->name << " does not reach the query root";
  }

  // The merged trace exports to Chrome JSON without losing the server
  // spans (one complete event per span).
  std::string chrome = trace.ToChromeJsonString();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("serve "), std::string::npos);
}

TEST(HedgedTraceTest, HedgedRequestGraftsWinnerAndCancelledLoser) {
  // Slow primary (multi-second token-checking evaluation) + fast
  // runner-up; a 10 ms hedge delay guarantees the hedge launches and
  // wins while the primary is still evaluating, and the loser's
  // half-closed cancellation response still carries its server subtree.
  HttpServer slow_server(CrossProductEndpoint("EP#0"));
  HttpServer fast_server(TinyEndpoint("EP#1"));
  ASSERT_TRUE(slow_server.Start().ok());
  ASSERT_TRUE(fast_server.Start().ok());

  std::vector<std::shared_ptr<net::Endpoint>> replicas = {
      std::make_shared<HttpSparqlEndpoint>("EP#0", "127.0.0.1",
                                           slow_server.port()),
      std::make_shared<HttpSparqlEndpoint>("EP#1", "127.0.0.1",
                                           fast_server.port()),
  };
  net::ReplicaGroupOptions group_options;
  group_options.lazy_probe = false;  // Keep ranking = insertion order.
  group_options.hedging_enabled = true;
  group_options.hedge_delay_ms = 10.0;
  auto group = std::make_unique<net::ReplicaGroup>("EP", std::move(replicas),
                                                   group_options);

  auto tracer = std::make_shared<obs::Tracer>();
  tracer->set_trace_id(obs::GenerateTraceId());
  obs::SpanId request_span = tracer->StartSpan("request", "request");
  Result<net::QueryResponse> response = Status::Internal("not run");
  {
    obs::TraceContext context;
    context.tracer = tracer;
    context.trace_id = tracer->trace_id();
    context.parent = request_span;
    obs::TraceContextScope scope(context);
    response = group->QueryCancellable(
        kSlowQuery, CancelToken::Cancellable(Deadline::AfterMillis(20000)));
  }
  // Destroying the group drains the detached loser, so its cancelled
  // subtree is grafted before we snapshot.
  group.reset();
  tracer->EndSpan(request_span);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->served_by, "EP#1");
  EXPECT_TRUE(response->hedged);

  // Both arms made it into the trace: exactly one serve span finished
  // "ok" (the winner, labelled with its replica id) and exactly one was
  // cancelled (the half-closed loser).
  obs::Trace merged = tracer->Snapshot();
  int winners = 0;
  int cancelled = 0;
  for (const obs::Span& span : merged.spans) {
    if (span.category != "server" || span.name.rfind("serve ", 0) != 0) {
      continue;
    }
    EXPECT_EQ(span.parent, request_span);
    std::string status;
    std::string served_by;
    bool was_cancelled = false;
    for (const auto& annotation : span.annotations) {
      if (annotation.key == "status") status = annotation.value;
      if (annotation.key == "served_by") served_by = annotation.value;
      if (annotation.key == "cancelled" && annotation.value == "true") {
        was_cancelled = true;
      }
    }
    if (status == "ok") {
      ++winners;
      EXPECT_EQ(served_by, "EP#1");
    }
    if (was_cancelled) {
      ++cancelled;
      EXPECT_EQ(served_by, "EP#0");
    }
  }
  EXPECT_EQ(winners, 1);
  EXPECT_EQ(cancelled, 1);

  slow_server.Stop();
  fast_server.Stop();
}

// ---------------------------------------------------------------------
// /metrics, /debug/queries, /health
// ---------------------------------------------------------------------

/// Parses the first sample value of `name{...}` from Prometheus text.
double SampleValue(const std::string& text, const std::string& prefix) {
  size_t pos = text.find(prefix);
  if (pos == std::string::npos) return -1.0;
  size_t space = text.find("} ", pos);
  if (space == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + space + 2, nullptr);
}

TEST(MetricsEndpointTest, ExposesMonotonicCountersAcrossScrapes) {
  obs::MetricsRegistry registry;
  HttpServerOptions options;
  options.metrics = &registry;
  HttpServer server(TinyEndpoint("EP"), options);
  ASSERT_TRUE(server.Start().ok());
  HttpSparqlEndpoint client("EP", "127.0.0.1", server.port());
  const std::string query = "SELECT ?s WHERE { ?s <http://ex/p> ?o }";
  ASSERT_TRUE(client.Query(query).ok());

  auto scrape = [&] {
    return RawExchange(server.port(),
                       "GET /metrics HTTP/1.1\r\nHost: x\r\n"
                       "Connection: close\r\n\r\n");
  };
  std::string first = scrape();
  EXPECT_NE(first.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << first;
  EXPECT_NE(first.find("# TYPE lusail_rpc_requests_total counter"),
            std::string::npos);
  double before =
      SampleValue(first, "lusail_rpc_requests_total{server=\"EP\"}");
  ASSERT_GE(before, 1.0) << first;

  ASSERT_TRUE(client.Query(query).ok());
  double after = SampleValue(
      scrape(), "lusail_rpc_requests_total{server=\"EP\"}");
  EXPECT_GT(after, before);
  server.Stop();
}

TEST(MetricsEndpointTest, RegistryCollectorsJoinTheExposition) {
  obs::MetricsRegistry registry;
  obs::ScopedCollector collector(
      &registry, [](obs::MetricsSnapshot* snapshot) {
        snapshot->AddCounter("lusail_custom_total", "A custom counter.",
                             {{"tier", "verdicts"}}, 7);
      });
  HttpServerOptions options;
  options.metrics = &registry;
  HttpServer server(TinyEndpoint("EP"), options);
  ASSERT_TRUE(server.Start().ok());
  std::string response = RawExchange(
      server.port(),
      "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(response.find("lusail_custom_total{tier=\"verdicts\"} 7"),
            std::string::npos)
      << response;
  server.Stop();
}

TEST(MetricsEndpointTest, ScrapeBodyEscapesHelpAndLabelValues) {
  // Wire-level check of the exposition escapes: a collector whose HELP
  // text and label values carry newlines, quotes, and backslashes must
  // still produce a body where every line is a comment or a sample.
  obs::MetricsRegistry registry;
  obs::ScopedCollector collector(
      &registry, [](obs::MetricsSnapshot* snapshot) {
        snapshot->AddCounter("lusail_hostile_total",
                             "line one\nline two \\ \"quoted\"",
                             {{"path", "C:\\data\n\"x\""}}, 1);
      });
  HttpServerOptions options;
  options.metrics = &registry;
  HttpServer server(TinyEndpoint("EP"), options);
  ASSERT_TRUE(server.Start().ok());
  std::string response = RawExchange(
      server.port(),
      "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  server.Stop();

  size_t body_start = response.find("\r\n\r\n");
  ASSERT_NE(body_start, std::string::npos) << response;
  std::string body = response.substr(body_start + 4);
  EXPECT_NE(
      body.find("# HELP lusail_hostile_total line one\\nline two \\\\ "
                "\"quoted\"\n"),
      std::string::npos)
      << body;
  EXPECT_NE(
      body.find("lusail_hostile_total{path=\"C:\\\\data\\n\\\"x\\\"\"} 1"),
      std::string::npos)
      << body;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) break;
    std::string line = body.substr(pos, eol - pos);
    EXPECT_TRUE(line.empty() || line.rfind("# ", 0) == 0 ||
                line.rfind("lusail_", 0) == 0)
        << "stray exposition line: " << line;
    pos = eol + 1;
  }
}

TEST(FlightRecorderEndpointTest, DebugQueriesServesTheRing) {
  obs::FlightRecorder recorder;
  HttpServerOptions options;
  options.flight_recorder = &recorder;
  HttpServer server(TinyEndpoint("EP"), options);
  ASSERT_TRUE(server.Start().ok());
  HttpSparqlEndpoint client("EP", "127.0.0.1", server.port());
  ASSERT_TRUE(client.Query("SELECT ?s WHERE { ?s <http://ex/p> ?o }").ok());
  ASSERT_TRUE(client.Query("ASK { ?s <http://ex/p> ?o }").ok());

  std::string response = RawExchange(
      server.port(),
      "GET /debug/queries?n=1 HTTP/1.1\r\nHost: x\r\n"
      "Connection: close\r\n\r\n");
  ASSERT_NE(response.find("200"), std::string::npos) << response;
  size_t body_start = response.find("\r\n\r\n");
  ASSERT_NE(body_start, std::string::npos);
  auto parsed = obs::JsonValue::Parse(response.substr(body_start + 4));
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_EQ(parsed->Get("total").AsDouble(), 2.0);
  // n=1 limits the returned records to the newest one (the ASK).
  std::string body = response.substr(body_start + 4);
  EXPECT_EQ(body.find("\"query_hash\""), body.rfind("\"query_hash\""))
      << body;
  server.Stop();
}

TEST(FlightRecorderEndpointTest, NoRecorderMeans404) {
  HttpServer server(TinyEndpoint("EP"));
  ASSERT_TRUE(server.Start().ok());
  std::string response = RawExchange(
      server.port(),
      "GET /debug/queries HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(response.find("404"), std::string::npos) << response;
  server.Stop();
}

TEST(HealthProbeTest, DegradedProbeAnswers503WithDetail) {
  HttpServerOptions options;
  options.health_probe = [](obs::JsonValue* body) {
    body->Set("degraded", std::string("cache snapshot load failed"));
    return false;
  };
  HttpServer server(TinyEndpoint("EP"), options);
  ASSERT_TRUE(server.Start().ok());
  std::string response = RawExchange(
      server.port(),
      "GET /health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 503"), std::string::npos) << response;
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("cache snapshot load failed"), std::string::npos);
  server.Stop();
}

TEST(StatsListenerTest, NullEndpointServesMetricsButNotSparql) {
  obs::MetricsRegistry registry;
  obs::ScopedCollector collector(
      &registry, [](obs::MetricsSnapshot* snapshot) {
        snapshot->AddCounter("lusail_federator_up", "Up.", {}, 1);
      });
  HttpServerOptions options;
  options.server_name = "federator";
  options.metrics = &registry;
  HttpServer server(nullptr, options);
  ASSERT_TRUE(server.Start().ok());

  std::string metrics = RawExchange(
      server.port(),
      "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("lusail_federator_up 1"), std::string::npos);
  EXPECT_NE(metrics.find("server=\"federator\""), std::string::npos);

  std::string body = "SELECT * WHERE { ?s ?p ?o }";
  std::string sparql = RawExchange(
      server.port(),
      "POST /sparql HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "Content-Type: application/sparql-query\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(sparql.find("HTTP/1.1 503"), std::string::npos) << sparql;
  server.Stop();
}

}  // namespace
}  // namespace lusail
