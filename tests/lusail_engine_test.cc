#include "core/lusail_engine.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/fedx_engine.h"
#include "sparql/evaluator.h"
#include "sparql/parser.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

using core::LusailEngine;
using core::LusailOptions;
using workload::BuildFederation;
using workload::EndpointSpec;
using workload::Figure1Federation;
using workload::Figure2QueryQa;

/// Renders a result table as a set of sorted row strings (order-free
/// comparison).
std::set<std::string> RowSet(const sparql::ResultTable& table) {
  // Map columns by variable name so engines with different projection
  // orders compare equal.
  std::vector<size_t> order(table.vars.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return table.vars[a] < table.vars[b];
  });
  std::set<std::string> rows;
  for (const auto& row : table.rows) {
    std::string line;
    for (size_t i : order) {
      line += table.vars[i] + "=" +
              (row[i].has_value() ? row[i]->ToString() : "UNDEF") + "|";
    }
    rows.insert(line);
  }
  return rows;
}

/// Evaluates a query over the union of all endpoint data (the oracle for
/// queries whose per-entity data is endpoint-local).
sparql::ResultTable OracleExecute(const std::vector<EndpointSpec>& specs,
                                  const std::string& query_text) {
  store::TripleStore store;
  for (const EndpointSpec& spec : specs) {
    for (const rdf::TermTriple& t : spec.triples) store.Add(t);
  }
  store.Freeze();
  sparql::Evaluator evaluator(&store);
  auto query = sparql::ParseQuery(query_text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  auto result = evaluator.Execute(*query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(LusailFigure1Test, QaReturnsThePaperThreeAnswers) {
  auto federation = BuildFederation(Figure1Federation(),
                                    net::LatencyModel::None());
  LusailEngine lusail(federation.get());
  auto result = lusail.Execute(Figure2QueryQa());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const sparql::ResultTable& table = result->table;
  ASSERT_EQ(table.vars, (std::vector<std::string>{"S", "P", "U", "A"}));
  std::set<std::string> rows = RowSet(table);
  EXPECT_EQ(rows.size(), 3u);
  auto has = [&rows](const std::string& needle) {
    return std::any_of(rows.begin(), rows.end(), [&](const std::string& r) {
      return r.find(needle) != std::string::npos;
    });
  };
  // (Kim, Joy, CMU, "CCCC"), (Kim, Tim, MIT, "XXX"), (Lee, Ben, MIT, "XXX").
  EXPECT_TRUE(has("Joy")) << "missing the Kim/Joy/CMU answer";
  EXPECT_TRUE(has("Tim")) << "missing the Kim/Tim/MIT interlink answer";
  EXPECT_TRUE(has("Ben")) << "missing the Lee/Ben/MIT answer";
  EXPECT_TRUE(has("\"CCCC\""));
  EXPECT_TRUE(has("\"XXX\""));
}

TEST(LusailFigure1Test, QaDetectsUAndPAsGlobalJoinVariables) {
  auto federation = BuildFederation(Figure1Federation(),
                                    net::LatencyModel::None());
  LusailEngine lusail(federation.get());
  auto analyzed = lusail.Analyze(Figure2QueryQa());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::set<std::string> gjvs = analyzed->gjvs.GjvNames();
  EXPECT_TRUE(gjvs.count("U")) << "?U must be global (Tim's MIT interlink)";
  EXPECT_TRUE(gjvs.count("P"))
      << "?P must be global (Ann advises but teaches nothing)";
  EXPECT_FALSE(gjvs.count("S")) << "?S is local at both endpoints";
  EXPECT_FALSE(gjvs.count("C")) << "?C is local at both endpoints";
  EXPECT_GT(analyzed->decomposition.subqueries.size(), 1u);
}

TEST(LusailFigure1Test, FedXReturnsTheSameAnswers) {
  auto specs = Figure1Federation();
  auto federation = BuildFederation(specs, net::LatencyModel::None());
  LusailEngine lusail(federation.get());
  baselines::FedXEngine fedx(federation.get());
  auto lusail_result = lusail.Execute(Figure2QueryQa());
  auto fedx_result = fedx.Execute(Figure2QueryQa());
  ASSERT_TRUE(lusail_result.ok()) << lusail_result.status().ToString();
  ASSERT_TRUE(fedx_result.ok()) << fedx_result.status().ToString();
  EXPECT_EQ(RowSet(lusail_result->table), RowSet(fedx_result->table));
}

TEST(LusailLubmTest, AllQueriesMatchOracleOnSmallFederation) {
  workload::LubmGenerator generator(workload::LubmConfig::Small());
  auto specs = generator.GenerateAll();
  auto federation = BuildFederation(specs, net::LatencyModel::None());
  LusailEngine lusail(federation.get());
  for (const auto& [label, query] : workload::LubmGenerator::BenchmarkQueries()) {
    auto result = lusail.Execute(query);
    ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    sparql::ResultTable oracle = OracleExecute(specs, query);
    EXPECT_EQ(RowSet(result->table), RowSet(oracle)) << "query " << label;
    EXPECT_FALSE(result->table.rows.empty())
        << label << " should have answers on the small federation";
  }
}

TEST(LusailLubmTest, Q1AndQ2DecomposeToSingleSubquery) {
  workload::LubmGenerator generator(workload::LubmConfig::Small());
  auto federation =
      BuildFederation(generator.GenerateAll(), net::LatencyModel::None());
  LusailEngine lusail(federation.get());
  for (const std::string& query :
       {workload::LubmGenerator::Q1(), workload::LubmGenerator::Q2()}) {
    auto analyzed = lusail.Analyze(query);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    EXPECT_EQ(analyzed->decomposition.subqueries.size(), 1u)
        << "paper: Q1/Q2 are answerable endpoint-locally";
  }
}

TEST(LusailLubmTest, Q4DetectsUAsGjvAndDecomposes) {
  workload::LubmGenerator generator(workload::LubmConfig::Small());
  auto federation =
      BuildFederation(generator.GenerateAll(), net::LatencyModel::None());
  LusailEngine lusail(federation.get());
  auto analyzed = lusail.Analyze(workload::LubmGenerator::Q4());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_TRUE(analyzed->gjvs.IsGjv("U"))
      << "remote PhD degrees make ?U global";
  EXPECT_GE(analyzed->decomposition.subqueries.size(), 2u);
}

}  // namespace
}  // namespace lusail
