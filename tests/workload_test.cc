#include <map>
#include <set>

#include <gtest/gtest.h>

#include "sparql/evaluator.h"
#include "sparql/parser.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lrb_generator.h"
#include "workload/lubm_generator.h"
#include "workload/qfed_generator.h"

namespace lusail {
namespace {

using workload::EndpointSpec;

/// Builds a single store holding the union of all endpoint data.
std::unique_ptr<store::TripleStore> UnionStore(
    const std::vector<EndpointSpec>& specs) {
  auto store = std::make_unique<store::TripleStore>();
  for (const EndpointSpec& spec : specs) {
    for (const rdf::TermTriple& t : spec.triples) store->Add(t);
  }
  store->Freeze();
  return store;
}

size_t OracleCount(const store::TripleStore& store, const std::string& text) {
  sparql::Evaluator evaluator(&store);
  auto query = sparql::ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString() << "\n" << text;
  if (!query.ok()) return 0;
  auto result = evaluator.Execute(*query);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << text;
  if (!result.ok()) return 0;
  return result->NumRows();
}

// ---------------------------------------------------------------------
// LUBM
// ---------------------------------------------------------------------

TEST(LubmGeneratorTest, IsDeterministic) {
  workload::LubmGenerator a(workload::LubmConfig::Small());
  workload::LubmGenerator b(workload::LubmConfig::Small());
  auto ta = a.GenerateUniversity(1);
  auto tb = b.GenerateUniversity(1);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
}

TEST(LubmGeneratorTest, DifferentSeedsDiffer) {
  workload::LubmConfig c1 = workload::LubmConfig::Small();
  workload::LubmConfig c2 = c1;
  c2.seed = 99;
  auto ta = workload::LubmGenerator(c1).GenerateUniversity(0);
  auto tb = workload::LubmGenerator(c2).GenerateUniversity(0);
  EXPECT_NE(rdf::WriteNTriples(ta), rdf::WriteNTriples(tb));
}

TEST(LubmGeneratorTest, EveryCourseIsTaughtAndEveryGradCourseTaken) {
  workload::LubmGenerator gen(workload::LubmConfig::Small());
  auto store = UnionStore(gen.GenerateAll());
  constexpr const char* kUb =
      "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";
  // Graduate courses without a teacher.
  EXPECT_EQ(
      0u,
      OracleCount(*store,
                  std::string("PREFIX ub: <") + kUb +
                      "> PREFIX rdf: "
                      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
                      "SELECT ?c WHERE { ?c rdf:type ub:GraduateCourse . "
                      "FILTER NOT EXISTS { ?p ub:teacherOf ?c . } }"));
  // Graduate courses nobody takes.
  EXPECT_EQ(
      0u,
      OracleCount(*store,
                  std::string("PREFIX ub: <") + kUb +
                      "> PREFIX rdf: "
                      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
                      "SELECT ?c WHERE { ?c rdf:type ub:GraduateCourse . "
                      "FILTER NOT EXISTS { ?s ub:takesCourse ?c . } }"));
}

TEST(LubmGeneratorTest, AllBenchmarkQueriesHaveAnswers) {
  workload::LubmGenerator gen(workload::LubmConfig::Small());
  auto store = UnionStore(gen.GenerateAll());
  for (const auto& [label, query] :
       workload::LubmGenerator::BenchmarkQueries()) {
    EXPECT_GT(OracleCount(*store, query), 0u) << label;
  }
  EXPECT_GT(OracleCount(*store, workload::LubmGenerator::QueryQa()), 0u);
}

TEST(LubmGeneratorTest, RemotePhdDegreesExist) {
  workload::LubmConfig cfg = workload::LubmConfig::Small();
  workload::LubmGenerator gen(cfg);
  bool found_remote = false;
  for (int u = 0; u < cfg.num_universities && !found_remote; ++u) {
    std::string own = workload::LubmGenerator::UniversityIri(u);
    for (const rdf::TermTriple& t : gen.GenerateUniversity(u)) {
      if (t.predicate.lexical().find("PhDDegreeFrom") != std::string::npos &&
          t.object.lexical() != own) {
        found_remote = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_remote) << "interlinks are required for GJV detection";
}

// ---------------------------------------------------------------------
// QFed
// ---------------------------------------------------------------------

TEST(QFedGeneratorTest, FourEndpointsWithExpectedIds) {
  workload::QFedGenerator gen(workload::QFedConfig::Small());
  auto specs = gen.GenerateAll();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].id, "drugbank");
  EXPECT_EQ(specs[1].id, "diseasome");
  EXPECT_EQ(specs[2].id, "sider");
  EXPECT_EQ(specs[3].id, "dailymed");
  for (const auto& spec : specs) EXPECT_FALSE(spec.triples.empty());
}

TEST(QFedGeneratorTest, AllBenchmarkQueriesHaveAnswers) {
  workload::QFedGenerator gen(workload::QFedConfig::Small());
  auto store = UnionStore(gen.GenerateAll());
  for (const auto& [label, query] :
       workload::QFedGenerator::BenchmarkQueries()) {
    EXPECT_GT(OracleCount(*store, query), 0u) << label;
  }
}

TEST(QFedGeneratorTest, FilterVariantIsMoreSelective) {
  workload::QFedGenerator gen(workload::QFedConfig::Small());
  auto store = UnionStore(gen.GenerateAll());
  size_t base = OracleCount(*store, workload::QFedGenerator::C2P2());
  size_t filtered = OracleCount(*store, workload::QFedGenerator::C2P2F());
  EXPECT_LT(filtered, base);
  EXPECT_GT(filtered, 0u);
}

TEST(QFedGeneratorTest, BigLiteralsAreBig) {
  workload::QFedConfig cfg = workload::QFedConfig::Small();
  workload::QFedGenerator gen(cfg);
  bool found = false;
  for (const rdf::TermTriple& t : gen.GenerateDrugBank()) {
    if (t.predicate.lexical().find("indication") != std::string::npos) {
      EXPECT_GE(t.object.lexical().size(),
                static_cast<size_t>(cfg.big_literal_chars));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// LargeRDFBench
// ---------------------------------------------------------------------

TEST(LrbGeneratorTest, ThirteenEndpoints) {
  workload::LrbGenerator gen(workload::LrbConfig::Small());
  auto specs = gen.GenerateAll();
  ASSERT_EQ(specs.size(), 13u);
  std::set<std::string> ids;
  for (const auto& spec : specs) {
    ids.insert(spec.id);
    EXPECT_FALSE(spec.triples.empty()) << spec.id;
  }
  EXPECT_EQ(ids.size(), 13u) << "endpoint ids must be unique";
}

TEST(LrbGeneratorTest, TcgaMIsTheLargestEndpoint) {
  workload::LrbGenerator gen(workload::LrbConfig::Small());
  auto specs = gen.GenerateAll();
  size_t tcga_m = 0, max_other = 0;
  for (const auto& spec : specs) {
    if (spec.id == "tcga-m") {
      tcga_m = spec.triples.size();
    } else {
      max_other = std::max(max_other, spec.triples.size());
    }
  }
  EXPECT_GT(tcga_m, max_other)
      << "LinkedTCGA-M dominates the volume in the paper's Table 1";
}

TEST(LrbGeneratorTest, AllQueriesParseAndHaveAnswers) {
  workload::LrbGenerator gen(workload::LrbConfig::Small());
  auto store = UnionStore(gen.GenerateAll());
  auto check = [&](const std::vector<std::pair<std::string, std::string>>&
                       queries) {
    for (const auto& [label, query] : queries) {
      EXPECT_GT(OracleCount(*store, query), 0u) << label;
    }
  };
  check(workload::LrbGenerator::SimpleQueries());
  check(workload::LrbGenerator::ComplexQueries());
  check(workload::LrbGenerator::LargeQueries());
  check(workload::LrbGenerator::Bio2RdfQueries());
}

TEST(LrbGeneratorTest, QueryCategorySizesMatchTheBenchmark) {
  EXPECT_EQ(workload::LrbGenerator::SimpleQueries().size(), 14u);
  EXPECT_EQ(workload::LrbGenerator::ComplexQueries().size(), 10u);
  EXPECT_EQ(workload::LrbGenerator::LargeQueries().size(), 8u);
  EXPECT_EQ(workload::LrbGenerator::Bio2RdfQueries().size(), 5u);
}

TEST(LrbGeneratorTest, LargeQueriesHaveLargerResults) {
  workload::LrbGenerator gen(workload::LrbConfig::Small());
  auto store = UnionStore(gen.GenerateAll());
  // The B category must produce clearly more rows on average than S.
  size_t s_total = 0, b_total = 0;
  for (const auto& [label, query] : workload::LrbGenerator::SimpleQueries()) {
    s_total += OracleCount(*store, query);
  }
  for (const auto& [label, query] : workload::LrbGenerator::LargeQueries()) {
    b_total += OracleCount(*store, query);
  }
  EXPECT_GT(b_total / 8, s_total / 14);
}

// ---------------------------------------------------------------------
// Figure 1 toy federation
// ---------------------------------------------------------------------

TEST(Figure1Test, HasInterlink) {
  auto specs = workload::Figure1Federation();
  ASSERT_EQ(specs.size(), 2u);
  // EP2 references MIT (hosted at EP1) through PhDDegreeFrom.
  bool found = false;
  for (const rdf::TermTriple& t : specs[1].triples) {
    if (t.predicate.lexical().find("PhDDegreeFrom") != std::string::npos &&
        t.object.lexical() == "http://www.mit.edu") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Figure1Test, OracleQaHasExactlyThreeAnswers) {
  auto store = UnionStore(workload::Figure1Federation());
  EXPECT_EQ(OracleCount(*store, workload::Figure2QueryQa()), 3u);
}

}  // namespace
}  // namespace lusail
