// Tests for the streaming result plane: SRJ stream framing and the
// incremental chunk decoder (split-safe across every byte boundary),
// the server's chunked-transfer path with end-of-stream trailers, the
// truncation-cap vs explicit LIMIT/OFFSET regression, the streaming
// client (row identity with the buffered path across query shapes,
// budgets, ID-space decode), decorator semantics (retry/failover only
// before the first delivered batch, no hedging for streams), slow-
// consumer back-pressure and mid-stream disconnects, and the engine's
// LIMIT pushdown into generated subqueries.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dictionary.h"
#include "core/id_table.h"
#include "core/lusail_engine.h"
#include "federation/federation.h"
#include "net/endpoint.h"
#include "net/fault_injection.h"
#include "net/replica.h"
#include "net/resilience.h"
#include "net/sparql_endpoint.h"
#include "rpc/http_server.h"
#include "rpc/http_sparql_endpoint.h"
#include "rpc/results_json.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

using rpc::HttpServer;
using rpc::HttpServerOptions;
using rpc::HttpSparqlEndpoint;
using rpc::ParseSrj;
using rpc::ResultTableToSrj;
using rpc::SrjChunkDecoder;
using rpc::SrjStreamBindings;
using rpc::SrjStreamPrefix;
using rpc::SrjStreamSuffix;

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// Ordered row fingerprints: streaming must preserve the buffered row
/// order, so most comparisons here are order-sensitive.
std::vector<std::string> OrderedRows(const sparql::ResultTable& table) {
  std::vector<std::string> rows;
  for (const auto& row : table.rows) {
    std::string s;
    for (const auto& cell : row) {
      s += cell.has_value() ? cell->ToString() : "UNDEF";
      s += "\x1f";
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

std::vector<std::string> CanonicalRows(const sparql::ResultTable& table) {
  std::vector<std::string> rows = OrderedRows(table);
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// The term zoo from the codec tests: every term kind plus the string
/// boundary cases (empty literal stays bound, quotes/newlines escaped,
/// multi-byte UTF-8) that a chunk boundary can land inside.
sparql::ResultTable ZooTable() {
  sparql::ResultTable table;
  table.vars = {"a", "b", "c"};
  table.rows.push_back({rdf::Term::Iri("http://ex/thing?q=1&x=\"y\""),
                        rdf::Term::Literal("plain \"quoted\"\nline"),
                        rdf::Term::BlankNode("b0")});
  table.rows.push_back({rdf::Term::TypedLiteral("42",
                                                std::string(rdf::kXsdInteger)),
                        rdf::Term::LangLiteral("hallo", "de"),
                        std::nullopt});
  table.rows.push_back({std::nullopt, std::nullopt, std::nullopt});
  table.rows.push_back({rdf::Term::Double(2.5),
                        rdf::Term::Literal(""),
                        rdf::Term::Iri("http://ex/unicode/\xC3\xA9")});
  return table;
}

void ExpectTablesEqual(const sparql::ResultTable& want,
                       const sparql::ResultTable& got) {
  EXPECT_EQ(want.vars, got.vars);
  ASSERT_EQ(want.rows.size(), got.rows.size());
  EXPECT_EQ(OrderedRows(want), OrderedRows(got));
}

/// Store with two predicates so OPTIONAL / UNION / ORDER BY shapes all
/// have interesting answers: <sN> <p> N for N in [0,n), <sN> <q> catN%3
/// for even N only.
std::unique_ptr<store::TripleStore> ShapeStore(int n = 10) {
  auto store = std::make_unique<store::TripleStore>();
  for (int i = 0; i < n; ++i) {
    rdf::Term subject = rdf::Term::Iri("http://ex/s" + std::to_string(i));
    store->Add(rdf::TermTriple{subject, rdf::Term::Iri("http://ex/p"),
                               rdf::Term::Integer(i)});
    if (i % 2 == 0) {
      store->Add(rdf::TermTriple{
          subject, rdf::Term::Iri("http://ex/q"),
          rdf::Term::Iri("http://ex/cat" + std::to_string(i % 3))});
    }
  }
  store->Freeze();
  return store;
}

/// Store whose full scan serializes well past the kernel's socket
/// buffers, so a reader that stalls genuinely blocks the server's writes.
std::unique_ptr<store::TripleStore> WideStore(int n = 20000) {
  auto store = std::make_unique<store::TripleStore>();
  std::string pad(180, 'x');
  for (int i = 0; i < n; ++i) {
    store->Add(rdf::TermTriple{
        rdf::Term::Iri("http://ex/s" + std::to_string(i)),
        rdf::Term::Iri("http://ex/p"), rdf::Term::Literal(pad)});
  }
  store->Freeze();
  return store;
}

const char kScan[] = "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }";

/// A raw streaming SPARQL request (Connection: close so the reader can
/// drain to EOF).
std::string StreamRequest(const std::string& body) {
  return "POST /sparql HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
         "X-Lusail-Stream: true\r\n"
         "Content-Type: application/sparql-query\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string BufferedRequest(const std::string& body) {
  return "POST /sparql HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
         "Content-Type: application/sparql-query\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

/// Sends `request` as raw bytes and returns the full response text.
std::string RawExchange(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

/// A de-chunked HTTP response: headers, reassembled body, and the
/// trailer section after the terminal chunk.
struct DechunkedResponse {
  std::string head;      ///< Status line + headers.
  std::string body;      ///< Concatenated chunk payloads.
  std::string trailers;  ///< Raw trailer lines after the 0-chunk.
  bool complete = false;  ///< Terminal chunk seen.
  size_t chunks = 0;      ///< Data chunks (terminal excluded).
};

DechunkedResponse Dechunk(const std::string& raw) {
  DechunkedResponse out;
  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return out;
  out.head = raw.substr(0, head_end);
  size_t pos = head_end + 4;
  while (pos < raw.size()) {
    size_t line_end = raw.find("\r\n", pos);
    if (line_end == std::string::npos) return out;
    size_t size = std::strtoul(raw.substr(pos, line_end - pos).c_str(),
                               nullptr, 16);
    pos = line_end + 2;
    if (size == 0) {
      size_t trailer_end = raw.find("\r\n\r\n", pos - 2);
      out.trailers = trailer_end == std::string::npos
                         ? raw.substr(pos)
                         : raw.substr(pos, trailer_end + 2 - pos);
      out.complete = true;
      return out;
    }
    if (pos + size + 2 > raw.size()) return out;
    out.body += raw.substr(pos, size);
    ++out.chunks;
    pos += size + 2;  // Skip the chunk's trailing CRLF.
  }
  return out;
}

// ---------------------------------------------------------------------
// SRJ stream framing
// ---------------------------------------------------------------------

TEST(SrjStreamTest, ConcatenatedPiecesEqualBufferedDocument) {
  sparql::ResultTable table = ZooTable();
  bool first = true;
  std::string doc = SrjStreamPrefix(table.vars);
  // Emit in two uneven batches to exercise the cross-batch comma.
  sparql::ResultTable batch1;
  batch1.vars = table.vars;
  batch1.rows.assign(table.rows.begin(), table.rows.begin() + 1);
  sparql::ResultTable batch2;
  batch2.vars = table.vars;
  batch2.rows.assign(table.rows.begin() + 1, table.rows.end());
  doc += SrjStreamBindings(batch1, &first);
  doc += SrjStreamBindings(batch2, &first);
  doc += SrjStreamSuffix();

  EXPECT_EQ(doc, ResultTableToSrj(table));
  Result<sparql::ResultTable> back = ParseSrj(doc);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectTablesEqual(table, *back);
}

TEST(SrjStreamTest, EmptyTableStreamsAsEmptyBindings) {
  sparql::ResultTable table;
  table.vars = {"x"};
  bool first = true;
  std::string doc = SrjStreamPrefix(table.vars) +
                    SrjStreamBindings(table, &first) + SrjStreamSuffix();
  Result<sparql::ResultTable> back = ParseSrj(doc);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->vars, table.vars);
  EXPECT_TRUE(back->rows.empty());
}

// ---------------------------------------------------------------------
// SrjChunkDecoder: split-safety at every byte boundary
// ---------------------------------------------------------------------

TEST(SrjChunkDecoderTest, OneByteFeedRoundTripsTermZoo) {
  // Feeding one byte at a time puts a "chunk boundary" at every position
  // of the document — inside escapes, inside multi-byte UTF-8 sequences,
  // between a key and its colon. The decode must be byte-exact anyway.
  sparql::ResultTable table = ZooTable();
  std::string doc = ResultTableToSrj(table);
  SrjChunkDecoder decoder;
  sparql::ResultTable got;
  for (char byte : doc) {
    ASSERT_TRUE(decoder.Feed(std::string_view(&byte, 1)).ok());
    if (decoder.PendingRows() > 0) {
      sparql::ResultTable batch = decoder.TakeTable();
      if (got.vars.empty()) got.vars = batch.vars;
      for (auto& row : batch.rows) got.rows.push_back(std::move(row));
    }
  }
  ASSERT_TRUE(decoder.Finish().ok());
  sparql::ResultTable tail = decoder.TakeTable();
  if (got.vars.empty()) got.vars = tail.vars;
  for (auto& row : tail.rows) got.rows.push_back(std::move(row));
  ExpectTablesEqual(table, got);
  EXPECT_EQ(decoder.TotalRows(), table.rows.size());
}

TEST(SrjChunkDecoderTest, EmptyStringBindingStaysBoundAtEverySplit) {
  // "" is a real literal; an unbound cell is an omitted key. The decoder
  // must keep that distinction no matter where the chunk boundary lands.
  sparql::ResultTable table;
  table.vars = {"x", "y"};
  table.rows.push_back({rdf::Term::Literal(""), std::nullopt});
  std::string doc = ResultTableToSrj(table);
  for (size_t split = 0; split <= doc.size(); ++split) {
    SrjChunkDecoder decoder;
    ASSERT_TRUE(decoder.Feed(std::string_view(doc).substr(0, split)).ok());
    ASSERT_TRUE(decoder.Feed(std::string_view(doc).substr(split)).ok());
    ASSERT_TRUE(decoder.Finish().ok()) << "split at " << split;
    sparql::ResultTable got = decoder.TakeTable();
    ASSERT_EQ(got.rows.size(), 1u) << "split at " << split;
    ASSERT_TRUE(got.rows[0][0].has_value()) << "split at " << split;
    EXPECT_TRUE(got.rows[0][0]->is_literal());
    EXPECT_EQ(got.rows[0][0]->lexical(), "");
    EXPECT_FALSE(got.rows[0][1].has_value()) << "split at " << split;
  }
}

TEST(SrjChunkDecoderTest, LanguageTagBeatsDatatypeAtEverySplit) {
  // Lax producers emit both xml:lang and datatype; the non-empty tag
  // wins — including when the boundary lands mid-way through either key.
  const std::string doc =
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":"
      "[{\"x\":{\"type\":\"literal\",\"value\":\"bonjour\","
      "\"xml:lang\":\"fr\","
      "\"datatype\":\"http://www.w3.org/2001/XMLSchema#string\"}}]}}";
  for (size_t split = 0; split <= doc.size(); ++split) {
    SrjChunkDecoder decoder;
    ASSERT_TRUE(decoder.Feed(std::string_view(doc).substr(0, split)).ok());
    ASSERT_TRUE(decoder.Feed(std::string_view(doc).substr(split)).ok());
    ASSERT_TRUE(decoder.Finish().ok()) << "split at " << split;
    sparql::ResultTable got = decoder.TakeTable();
    ASSERT_EQ(got.rows.size(), 1u);
    ASSERT_TRUE(got.rows[0][0].has_value());
    EXPECT_EQ(got.rows[0][0]->lang(), "fr") << "split at " << split;
    EXPECT_TRUE(got.rows[0][0]->datatype().empty());
  }
}

TEST(SrjChunkDecoderTest, EmptyLanguageTagHonorsDatatype) {
  const std::string doc =
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":"
      "[{\"x\":{\"type\":\"literal\",\"value\":\"42\",\"xml:lang\":\"\","
      "\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\"}}]}}";
  SrjChunkDecoder decoder;
  for (char byte : doc) {
    ASSERT_TRUE(decoder.Feed(std::string_view(&byte, 1)).ok());
  }
  ASSERT_TRUE(decoder.Finish().ok());
  sparql::ResultTable got = decoder.TakeTable();
  ASSERT_EQ(got.rows.size(), 1u);
  ASSERT_TRUE(got.rows[0][0].has_value());
  EXPECT_TRUE(got.rows[0][0]->lang().empty());
  EXPECT_EQ(got.rows[0][0]->datatype(),
            "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(SrjChunkDecoderTest, IdModeMatchesStringModeThroughDictionary) {
  sparql::ResultTable table = ZooTable();
  std::string doc = ResultTableToSrj(table);
  auto dict = std::make_shared<core::TermDictionary>();
  SrjChunkDecoder decoder(dict);
  // Uneven slices rather than single bytes: exercises multi-row drains.
  for (size_t pos = 0; pos < doc.size();) {
    size_t len = std::min<size_t>(7, doc.size() - pos);
    ASSERT_TRUE(decoder.Feed(std::string_view(doc).substr(pos, len)).ok());
    pos += len;
  }
  ASSERT_TRUE(decoder.Finish().ok());
  core::IdTable ids = decoder.TakeIds();
  ASSERT_EQ(ids.NumRows(), table.rows.size());
  sparql::ResultTable decoded = core::DecodeIdTable(ids, *dict);
  ExpectTablesEqual(table, decoded);
}

TEST(SrjChunkDecoderTest, AskFormsDecodeByteWise) {
  // ASK responses have no bindings array; the decoder recognizes the
  // complete document at root-close.
  sparql::ResultTable yes;
  yes.rows.push_back({});
  for (const sparql::ResultTable& table :
       {yes, sparql::ResultTable{}}) {
    std::string doc = ResultTableToSrj(table);
    SrjChunkDecoder decoder;
    for (char byte : doc) {
      ASSERT_TRUE(decoder.Feed(std::string_view(&byte, 1)).ok()) << doc;
    }
    ASSERT_TRUE(decoder.Finish().ok()) << doc;
    sparql::ResultTable got = decoder.TakeTable();
    EXPECT_TRUE(got.vars.empty());
    EXPECT_EQ(got.rows.size(), table.rows.size()) << doc;
  }
}

TEST(SrjChunkDecoderTest, TruncatedStreamFailsOnFinish) {
  // A stream cut mid-document (server died before the terminal chunk)
  // must fail loudly at Finish, never pass as a short-but-valid answer.
  sparql::ResultTable table = ZooTable();
  std::string doc = ResultTableToSrj(table);
  SrjChunkDecoder decoder;
  ASSERT_TRUE(
      decoder.Feed(std::string_view(doc).substr(0, doc.size() - 3)).ok());
  EXPECT_FALSE(decoder.Finish().ok());
}

TEST(SrjChunkDecoderTest, MalformedBindingIsAStickyError) {
  const std::string doc =
      "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":"
      "[{\"x\":{\"type\":\"warp\",\"value\":\"v\"}}]}}";
  SrjChunkDecoder decoder;
  Status status = Status::OK();
  for (char byte : doc) {
    status = decoder.Feed(std::string_view(&byte, 1));
    if (!status.ok()) break;
  }
  if (status.ok()) status = decoder.Finish();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(decoder.Finish().ok());  // Sticky.
}

// ---------------------------------------------------------------------
// Server: chunked transfer with trailers (raw socket)
// ---------------------------------------------------------------------

class StreamWireTest : public ::testing::Test {
 protected:
  void Start(HttpServerOptions options) {
    auto endpoint = std::make_shared<net::SparqlEndpoint>(
        "EP", ShapeStore(), net::LatencyModel::None());
    server_ = std::make_unique<HttpServer>(endpoint, options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }
  std::unique_ptr<HttpServer> server_;
};

TEST_F(StreamWireTest, StreamedResponseIsChunkedWithTrailers) {
  HttpServerOptions options;
  options.stream_batch_rows = 3;  // 10 rows -> several data chunks.
  Start(options);
  std::string raw = RawExchange(server_->port(), StreamRequest(kScan));
  DechunkedResponse response = Dechunk(raw);
  ASSERT_TRUE(response.complete) << raw;
  EXPECT_NE(response.head.find("Transfer-Encoding: chunked"),
            std::string::npos);
  EXPECT_NE(response.head.find("Trailer:"), std::string::npos);
  EXPECT_GE(response.chunks, 3u);  // Prefix + >=2 binding batches + suffix.
  EXPECT_NE(response.trailers.find("X-Lusail-Server-Ms"), std::string::npos);

  // Reassembled chunks are exactly a buffered SRJ document.
  Result<sparql::ResultTable> parsed = ParseSrj(response.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->rows.size(), 10u);
  EXPECT_EQ(server_->stats().streamed_requests, 1u);
  EXPECT_EQ(server_->stats().stream_aborts, 0u);
}

TEST_F(StreamWireTest, StreamedAnswerMatchesBufferedAnswer) {
  Start(HttpServerOptions{});
  std::string streamed_raw = RawExchange(server_->port(),
                                         StreamRequest(kScan));
  DechunkedResponse streamed = Dechunk(streamed_raw);
  ASSERT_TRUE(streamed.complete);
  std::string buffered_raw = RawExchange(server_->port(),
                                         BufferedRequest(kScan));
  size_t body_at = buffered_raw.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  Result<sparql::ResultTable> streamed_table = ParseSrj(streamed.body);
  Result<sparql::ResultTable> buffered_table =
      ParseSrj(buffered_raw.substr(body_at + 4));
  ASSERT_TRUE(streamed_table.ok());
  ASSERT_TRUE(buffered_table.ok());
  ExpectTablesEqual(*buffered_table, *streamed_table);
}

// The truncation-cap regression (both response paths): an explicit
// LIMIT at or under the cap is the client asking for less — it must
// never be reported as a truncated answer — and OFFSET is applied
// before the cap measures anything.
TEST_F(StreamWireTest, ExplicitLimitUnderCapIsNotTruncated) {
  HttpServerOptions options;
  options.max_result_rows = 3;
  Start(options);

  const std::string limited = std::string(kScan) + " LIMIT 2";
  const std::string windowed = std::string(kScan) + " LIMIT 3 OFFSET 8";

  // Buffered: LIMIT 2 <= cap 3 -> 2 rows, no truncation marker.
  std::string raw = RawExchange(server_->port(), BufferedRequest(limited));
  EXPECT_EQ(raw.find("X-Lusail-Truncated"), std::string::npos) << raw;
  Result<sparql::ResultTable> parsed = ParseSrj(raw.substr(raw.find("\r\n\r\n") + 4));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows.size(), 2u);

  // Buffered: OFFSET applied before the cap measures — 10 rows, skip 8,
  // only 2 remain under LIMIT 3; still not truncation.
  raw = RawExchange(server_->port(), BufferedRequest(windowed));
  EXPECT_EQ(raw.find("X-Lusail-Truncated"), std::string::npos) << raw;
  parsed = ParseSrj(raw.substr(raw.find("\r\n\r\n") + 4));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows.size(), 2u);

  // Streamed: same two queries, truncation trailer must stay absent.
  for (const std::string& query : {limited, windowed}) {
    DechunkedResponse response =
        Dechunk(RawExchange(server_->port(), StreamRequest(query)));
    ASSERT_TRUE(response.complete) << query;
    EXPECT_EQ(response.trailers.find("X-Lusail-Truncated"),
              std::string::npos)
        << query;
    Result<sparql::ResultTable> rows = ParseSrj(response.body);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows.size(), 2u) << query;
  }
  EXPECT_EQ(server_->stats().truncated_results, 0u);

  // Control: an uncapped scan genuinely overflows the cap — marker set
  // on the buffered path and in the streamed trailers.
  raw = RawExchange(server_->port(), BufferedRequest(kScan));
  EXPECT_NE(raw.find("X-Lusail-Truncated: true"), std::string::npos);
  DechunkedResponse overflowed =
      Dechunk(RawExchange(server_->port(), StreamRequest(kScan)));
  ASSERT_TRUE(overflowed.complete);
  EXPECT_NE(overflowed.trailers.find("X-Lusail-Truncated"),
            std::string::npos);
  Result<sparql::ResultTable> capped = ParseSrj(overflowed.body);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->rows.size(), 3u);
  EXPECT_EQ(server_->stats().truncated_results, 2u);
}

// ---------------------------------------------------------------------
// Client: incremental decode, budgets, ID mode
// ---------------------------------------------------------------------

class StreamClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto endpoint = std::make_shared<net::SparqlEndpoint>(
        "EP", ShapeStore(), net::LatencyModel::None());
    HttpServerOptions options;
    options.stream_batch_rows = 3;
    server_ = std::make_unique<HttpServer>(endpoint, options);
    ASSERT_TRUE(server_->Start().ok());
    client_ = std::make_shared<HttpSparqlEndpoint>("EP", "127.0.0.1",
                                                   server_->port());
  }
  void TearDown() override { server_->Stop(); }

  /// Collects a full stream into one table, counting batches.
  sparql::ResultTable Collect(const std::string& query, size_t* batches,
                              net::StreamSummary* summary_out = nullptr,
                              net::StreamOptions options = {}) {
    sparql::ResultTable all;
    *batches = 0;
    auto summary = client_->QueryStreaming(
        query, CancelToken(), options, [&](net::StreamBatch&& batch) {
          ++*batches;
          sparql::ResultTable rows;
          if (batch.ids != nullptr) {
            rows = core::DecodeIdTable(*batch.ids, *batch.ids_dict);
          } else {
            rows = std::move(batch.table);
          }
          if (all.vars.empty()) all.vars = rows.vars;
          for (auto& row : rows.rows) all.rows.push_back(std::move(row));
          return Status::OK();
        });
    EXPECT_TRUE(summary.ok()) << summary.status().ToString();
    if (summary.ok() && summary_out != nullptr) *summary_out = *summary;
    return all;
  }

  std::unique_ptr<HttpServer> server_;
  std::shared_ptr<HttpSparqlEndpoint> client_;
};

TEST_F(StreamClientTest, StreamingIsRowIdenticalToBufferedAcrossShapes) {
  const std::string shapes[] = {
      kScan,
      // OPTIONAL: unbound cells must survive the trip.
      "SELECT ?s ?o ?c WHERE { ?s <http://ex/p> ?o . "
      "OPTIONAL { ?s <http://ex/q> ?c . } }",
      // UNION.
      "SELECT ?s WHERE { { ?s <http://ex/q> <http://ex/cat0> . } UNION "
      "{ ?s <http://ex/q> <http://ex/cat2> . } }",
      // ORDER BY + LIMIT + OFFSET: the evaluator windows, the wire only
      // carries the window — order is part of the contract.
      std::string(kScan) + " ORDER BY DESC(?o) LIMIT 4 OFFSET 2",
      // LIMIT/OFFSET without ORDER BY.
      std::string(kScan) + " LIMIT 3 OFFSET 5",
  };
  for (const std::string& query : shapes) {
    Result<net::QueryResponse> buffered = client_->Query(query);
    ASSERT_TRUE(buffered.ok()) << query;
    size_t batches = 0;
    net::StreamSummary summary;
    sparql::ResultTable streamed = Collect(query, &batches, &summary);
    ExpectTablesEqual(buffered->table, streamed);
    EXPECT_EQ(summary.rows_delivered, buffered->table.rows.size()) << query;
    EXPECT_FALSE(summary.truncated) << query;
  }
}

TEST_F(StreamClientTest, LargeAnswerArrivesInMultipleBatches) {
  size_t batches = 0;
  net::StreamSummary summary;
  sparql::ResultTable all = Collect(kScan, &batches, &summary);
  EXPECT_EQ(all.rows.size(), 10u);
  EXPECT_GE(batches, 3u);  // 10 rows at stream_batch_rows = 3.
  EXPECT_GT(summary.response.first_row_ms, 0.0);
}

TEST_F(StreamClientTest, EmptyResultStillDeliversTheVariableSet) {
  size_t batches = 0;
  sparql::ResultTable all = Collect(
      "SELECT ?s ?o WHERE { ?s <http://ex/none> ?o . }", &batches);
  EXPECT_GE(batches, 1u);
  EXPECT_TRUE(all.rows.empty());
  EXPECT_EQ(all.vars, (std::vector<std::string>{"s", "o"}));
}

TEST_F(StreamClientTest, RowBudgetHalfClosesAndMarksTruncated) {
  net::StreamOptions options;
  options.max_rows = 4;
  size_t batches = 0;
  net::StreamSummary summary;
  sparql::ResultTable got = Collect(kScan, &batches, &summary, options);
  EXPECT_EQ(got.rows.size(), 4u);
  EXPECT_EQ(summary.rows_delivered, 4u);
  EXPECT_TRUE(summary.truncated);
  // The budget half-close dropped that connection; a fresh buffered
  // query must still work.
  Result<net::QueryResponse> after = client_->Query(kScan);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->table.rows.size(), 10u);
}

TEST_F(StreamClientTest, ParseDictionaryDecodesBatchesIntoIdSpace) {
  auto dict = std::make_shared<core::TermDictionary>();
  client_->set_parse_dictionary(dict);
  Result<net::QueryResponse> buffered = client_->Query(kScan);
  ASSERT_TRUE(buffered.ok());

  sparql::ResultTable all;
  size_t id_batches = 0;
  auto summary = client_->QueryStreaming(
      kScan, CancelToken(), net::StreamOptions{},
      [&](net::StreamBatch&& batch) {
        EXPECT_NE(batch.ids, nullptr);
        EXPECT_EQ(batch.ids_dict, dict);
        ++id_batches;
        sparql::ResultTable rows = core::DecodeIdTable(*batch.ids, *dict);
        if (all.vars.empty()) all.vars = rows.vars;
        for (auto& row : rows.rows) all.rows.push_back(std::move(row));
        return Status::OK();
      });
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GE(id_batches, 3u);
  sparql::ResultTable reference = buffered->ids != nullptr
      ? core::DecodeIdTable(*buffered->ids, *buffered->ids_dict)
      : buffered->table;
  ExpectTablesEqual(reference, all);
}

TEST_F(StreamClientTest, SinkErrorAbortsTheStream) {
  size_t delivered = 0;
  auto summary = client_->QueryStreaming(
      kScan, CancelToken(), net::StreamOptions{},
      [&](net::StreamBatch&& batch) -> Status {
        delivered += batch.NumRows();
        return Status::Internal("consumer exploded");
      });
  EXPECT_FALSE(summary.ok());
  EXPECT_GT(delivered, 0u);  // Exactly one batch reached the sink.
  // The client must recover on a fresh connection.
  Result<net::QueryResponse> after = client_->Query(kScan);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

// ---------------------------------------------------------------------
// Default (buffered-then-slice) QueryStreaming contract
// ---------------------------------------------------------------------

TEST(DefaultStreamingTest, SlicesTheBufferedAnswerIntoBatches) {
  net::SparqlEndpoint endpoint("EP", ShapeStore(), net::LatencyModel::None());
  net::StreamOptions options;
  options.batch_rows = 4;
  std::vector<size_t> batch_sizes;
  auto summary = endpoint.QueryStreaming(
      kScan, CancelToken(), options, [&](net::StreamBatch&& batch) {
        batch_sizes.push_back(batch.NumRows());
        return Status::OK();
      });
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->rows_delivered, 10u);
  EXPECT_FALSE(summary->truncated);
  EXPECT_EQ(batch_sizes, (std::vector<size_t>{4, 4, 2}));
}

TEST(DefaultStreamingTest, BudgetStopsDeliveryAndMarksTruncated) {
  net::SparqlEndpoint endpoint("EP", ShapeStore(), net::LatencyModel::None());
  net::StreamOptions options;
  options.batch_rows = 4;
  options.max_rows = 5;
  uint64_t delivered = 0;
  auto summary = endpoint.QueryStreaming(
      kScan, CancelToken(), options, [&](net::StreamBatch&& batch) {
        delivered += batch.NumRows();
        return Status::OK();
      });
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(delivered, 5u);
  EXPECT_EQ(summary->rows_delivered, 5u);
  EXPECT_TRUE(summary->truncated);
}

TEST(DefaultStreamingTest, EmptyResultDeliversOneAnnouncingBatch) {
  net::SparqlEndpoint endpoint("EP", ShapeStore(), net::LatencyModel::None());
  size_t batches = 0;
  std::vector<std::string> vars;
  auto summary = endpoint.QueryStreaming(
      "SELECT ?s WHERE { ?s <http://ex/none> ?s . }", CancelToken(),
      net::StreamOptions{}, [&](net::StreamBatch&& batch) {
        ++batches;
        vars = batch.table.vars;
        EXPECT_EQ(batch.NumRows(), 0u);
        return Status::OK();
      });
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(batches, 1u);
  EXPECT_EQ(vars, (std::vector<std::string>{"s"}));
}

// ---------------------------------------------------------------------
// Decorator semantics: retry/failover only before the first batch
// ---------------------------------------------------------------------

/// Streams a fixed table; fails with kUnavailable either before any
/// delivery (first `fail_before` calls) or right after the first batch
/// (`fail_mid_stream`).
class FlakyStreamEndpoint : public net::Endpoint {
 public:
  FlakyStreamEndpoint(std::string id, sparql::ResultTable table,
                      int fail_before, bool fail_mid_stream)
      : id_(std::move(id)),
        table_(std::move(table)),
        fail_before_(fail_before),
        fail_mid_stream_(fail_mid_stream) {}

  const std::string& id() const override { return id_; }

  Result<net::QueryResponse> Query(const std::string&) override {
    net::QueryResponse response;
    response.table = table_;
    return response;
  }

  Result<net::StreamSummary> QueryStreaming(
      const std::string&, const CancelToken&,
      const net::StreamOptions& options,
      const net::StreamSink& sink) override {
    int call = ++stream_calls_;
    if (call <= fail_before_) {
      return Status::Unavailable("injected pre-stream failure");
    }
    size_t batch_rows = options.batch_rows == 0 ? 256 : options.batch_rows;
    net::StreamSummary summary;
    for (size_t begin = 0; begin < table_.rows.size(); begin += batch_rows) {
      net::StreamBatch batch;
      batch.table.vars = table_.vars;
      size_t end = std::min(begin + batch_rows, table_.rows.size());
      batch.table.rows.assign(table_.rows.begin() + begin,
                              table_.rows.begin() + end);
      summary.rows_delivered += batch.NumRows();
      Status delivered = sink(std::move(batch));
      if (!delivered.ok()) return delivered;
      if (fail_mid_stream_) {
        return Status::Unavailable("injected mid-stream failure");
      }
    }
    return summary;
  }

  int stream_calls() const { return stream_calls_.load(); }

 private:
  std::string id_;
  sparql::ResultTable table_;
  int fail_before_;
  bool fail_mid_stream_;
  std::atomic<int> stream_calls_{0};
};

sparql::ResultTable SmallTable(int rows = 6) {
  sparql::ResultTable table;
  table.vars = {"s"};
  for (int i = 0; i < rows; ++i) {
    table.rows.push_back({rdf::Term::Integer(i)});
  }
  return table;
}

net::RetryPolicy FastRetry(int attempts) {
  net::RetryPolicy policy = net::RetryPolicy::Standard(attempts);
  policy.initial_backoff_ms = 1.0;
  policy.max_backoff_ms = 2.0;
  return policy;
}

TEST(ResilientStreamingTest, RetriesWhileNothingWasDelivered) {
  auto flaky = std::make_shared<FlakyStreamEndpoint>(
      "EP", SmallTable(), /*fail_before=*/2, /*fail_mid_stream=*/false);
  net::ResilientEndpoint resilient(flaky, FastRetry(4));
  uint64_t delivered = 0;
  auto summary = resilient.QueryStreaming(
      kScan, CancelToken(), net::StreamOptions{},
      [&](net::StreamBatch&& batch) {
        delivered += batch.NumRows();
        return Status::OK();
      });
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(delivered, 6u);  // Delivered exactly once, on attempt 3.
  EXPECT_EQ(flaky->stream_calls(), 3);
  EXPECT_EQ(resilient.stats().attempts, 3u);
}

TEST(ResilientStreamingTest, NeverRetriesAfterTheFirstBatch) {
  // Rows already at the consumer cannot be taken back; a retry would
  // replay them. The mid-stream failure must surface as-is.
  auto flaky = std::make_shared<FlakyStreamEndpoint>(
      "EP", SmallTable(), /*fail_before=*/0, /*fail_mid_stream=*/true);
  net::ResilientEndpoint resilient(flaky, FastRetry(4));
  uint64_t delivered = 0;
  auto summary = resilient.QueryStreaming(
      kScan, CancelToken(), net::StreamOptions{},
      [&](net::StreamBatch&& batch) {
        delivered += batch.NumRows();
        return Status::OK();
      });
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(flaky->stream_calls(), 1);  // No second attempt.
  EXPECT_EQ(delivered, 6u);             // One full batch went through.
}

TEST(ReplicaStreamingTest, FailsOverOnlyBeforeTheFirstBatch) {
  // Replica 0 fails pre-delivery, replica 1 streams fine: sequential
  // failover is sound and the consumer sees each row exactly once.
  auto down = std::make_shared<FlakyStreamEndpoint>(
      "ep#0", SmallTable(), /*fail_before=*/1000, false);
  auto up = std::make_shared<FlakyStreamEndpoint>("ep#1", SmallTable(),
                                                  0, false);
  net::ReplicaGroupOptions options;
  options.lazy_probe = false;
  options.hedging_enabled = true;  // Must be ignored for streams.
  options.hedge_delay_ms = 1.0;
  net::ReplicaGroup group("ep", {down, up}, options);
  uint64_t delivered = 0;
  auto summary = group.QueryStreaming(
      kScan, CancelToken(), net::StreamOptions{},
      [&](net::StreamBatch&& batch) {
        delivered += batch.NumRows();
        return Status::OK();
      });
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(delivered, 6u);
  EXPECT_EQ(summary->response.served_by, "ep#1");
  EXPECT_GE(group.stats().failovers, 1u);
  // Hedging duplicates rows, so streams never hedge.
  EXPECT_EQ(group.stats().hedges_launched, 0u);
}

TEST(ReplicaStreamingTest, MidStreamFailureIsFinal) {
  auto leaky = std::make_shared<FlakyStreamEndpoint>(
      "ep#0", SmallTable(), 0, /*fail_mid_stream=*/true);
  auto up = std::make_shared<FlakyStreamEndpoint>("ep#1", SmallTable(),
                                                  0, false);
  net::ReplicaGroupOptions options;
  options.lazy_probe = false;
  options.hedging_enabled = false;
  net::ReplicaGroup group("ep", {leaky, up}, options);
  uint64_t delivered = 0;
  auto summary = group.QueryStreaming(
      kScan, CancelToken(), net::StreamOptions{},
      [&](net::StreamBatch&& batch) {
        delivered += batch.NumRows();
        return Status::OK();
      });
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(delivered, 6u);  // Replica 1 never replayed them.
}

// ---------------------------------------------------------------------
// Slow consumers and mid-stream disconnects (back-pressure plumbing)
// ---------------------------------------------------------------------

class SlowConsumerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto endpoint = std::make_shared<net::SparqlEndpoint>(
        "WIDE", WideStore(), net::LatencyModel::None());
    HttpServerOptions options;
    options.request_timeout_ms = 300;  // Write deadline per chunk.
    options.stream_batch_rows = 512;
    server_ = std::make_unique<HttpServer>(endpoint, options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  /// Opens a connection with a tiny receive buffer (so the server's
  /// writes hit TCP back-pressure quickly) and sends a streaming scan.
  int OpenStalledStream() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    int rcvbuf = 4096;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    std::string request = StreamRequest(kScan);
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    return fd;
  }

  bool WaitForAbort(double timeout_ms = 10000.0) {
    Stopwatch timer;
    while (timer.ElapsedMillis() < timeout_ms) {
      if (server_->stats().stream_aborts >= 1) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(SlowConsumerTest, StalledReaderTripsTheWriteDeadline) {
  // A consumer that never reads blocks the server's chunk writes; the
  // per-write deadline fires, the sink fails, and the stream is aborted
  // instead of buffering the multi-megabyte answer in memory.
  int fd = OpenStalledStream();
  EXPECT_TRUE(WaitForAbort()) << "stalled reader never aborted the stream";
  ::close(fd);

  // The worker is free again: a normal request still gets served.
  auto client = std::make_shared<HttpSparqlEndpoint>("WIDE", "127.0.0.1",
                                                     server_->port());
  Result<net::QueryResponse> after =
      client->Query("SELECT ?s WHERE { ?s <http://ex/p> \"nope\" . }");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(SlowConsumerTest, DisconnectMidStreamAbortsTheStream) {
  int fd = OpenStalledStream();
  // Let the head and first chunks reach the socket, then vanish.
  char buf[2048];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_GT(n, 0);
  ::close(fd);  // Unread data pending -> RST; further writes fail fast.
  EXPECT_TRUE(WaitForAbort()) << "disconnect did not abort the stream";
}

// ---------------------------------------------------------------------
// Engine LIMIT pushdown into generated subqueries
// ---------------------------------------------------------------------

/// Records every query text shipped to the inner endpoint.
class RecordingEndpoint : public net::Endpoint {
 public:
  explicit RecordingEndpoint(std::shared_ptr<net::Endpoint> inner)
      : inner_(std::move(inner)) {}

  const std::string& id() const override { return inner_->id(); }

  Result<net::QueryResponse> Query(const std::string& text) override {
    Record(text);
    return inner_->Query(text);
  }
  Result<net::QueryResponse> QueryWithDeadline(
      const std::string& text, const Deadline& deadline) override {
    Record(text);
    return inner_->QueryWithDeadline(text, deadline);
  }
  Result<net::QueryResponse> QueryCancellable(
      const std::string& text, const CancelToken& cancel) override {
    Record(text);
    return inner_->QueryCancellable(text, cancel);
  }

  std::vector<std::string> recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return texts_;
  }

 private:
  void Record(const std::string& text) {
    std::lock_guard<std::mutex> lock(mu_);
    texts_.push_back(text);
  }
  std::shared_ptr<net::Endpoint> inner_;
  mutable std::mutex mu_;
  std::vector<std::string> texts_;
};

class LimitPushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two endpoints, disjoint subjects: s0..s4 on EP0, s5..s9 on EP1.
    for (int e = 0; e < 2; ++e) {
      auto store = std::make_unique<store::TripleStore>();
      for (int i = e * 5; i < e * 5 + 5; ++i) {
        store->Add(rdf::TermTriple{
            rdf::Term::Iri("http://ex/s" + std::to_string(i)),
            rdf::Term::Iri("http://ex/p"), rdf::Term::Integer(i)});
      }
      store->Freeze();
      auto recorder = std::make_shared<RecordingEndpoint>(
          std::make_shared<net::SparqlEndpoint>("EP" + std::to_string(e),
                                                std::move(store),
                                                net::LatencyModel::None()));
      recorders_.push_back(recorder);
      federation_.Add(recorder);
    }
  }

  /// True when any shipped subquery text carries a pushed LIMIT (the
  /// pushdown appends "\nLIMIT n"; GJV probes use inline " LIMIT 1", so
  /// the newline distinguishes them).
  bool SawPushedLimit(const std::string& expected) {
    for (const auto& recorder : recorders_) {
      for (const std::string& text : recorder->recorded()) {
        if (text.find("\nLIMIT " + expected) != std::string::npos) {
          return true;
        }
      }
    }
    return false;
  }

  bool SawAnyPushedLimit() {
    for (const auto& recorder : recorders_) {
      for (const std::string& text : recorder->recorded()) {
        if (text.find("\nLIMIT") != std::string::npos) return true;
      }
    }
    return false;
  }

  fed::Federation federation_;
  std::vector<std::shared_ptr<RecordingEndpoint>> recorders_;
};

TEST_F(LimitPushdownTest, WholeQueryModePushesLimitToEndpoints) {
  core::LusailEngine engine(&federation_);
  Result<fed::FederatedResult> full = engine.Execute(kScan);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->table.rows.size(), 10u);
  std::vector<std::string> full_rows = CanonicalRows(full->table);

  Result<fed::FederatedResult> limited =
      engine.Execute(std::string(kScan) + " LIMIT 3");
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  EXPECT_EQ(limited->table.rows.size(), 3u);
  EXPECT_TRUE(SawPushedLimit("3"));
  // A capped gather must still be a subset of the exact answer.
  for (const std::string& row : CanonicalRows(limited->table)) {
    EXPECT_TRUE(
        std::binary_search(full_rows.begin(), full_rows.end(), row))
        << "pushdown invented row " << row;
  }
}

TEST_F(LimitPushdownTest, OffsetStaysAtTheGather) {
  // LIMIT 2 OFFSET 1 ships as LIMIT 3 (offset+limit): each endpoint may
  // serve the whole window, OFFSET is applied exactly once federator-side.
  core::LusailEngine engine(&federation_);
  Result<fed::FederatedResult> result =
      engine.Execute(std::string(kScan) + " LIMIT 2 OFFSET 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.rows.size(), 2u);
  EXPECT_TRUE(SawPushedLimit("3"));
  for (const auto& recorder : recorders_) {
    for (const std::string& text : recorder->recorded()) {
      EXPECT_EQ(text.find("OFFSET"), std::string::npos)
          << "OFFSET must never ship to an endpoint: " << text;
    }
  }
}

TEST_F(LimitPushdownTest, DistinctSuppressesThePushdown) {
  // DISTINCT dedups across endpoints: a capped fetch could starve the
  // dedup of rows it needed. No LIMIT may ship.
  core::LusailEngine engine(&federation_);
  Result<fed::FederatedResult> result = engine.Execute(
      "SELECT DISTINCT ?o WHERE { ?s <http://ex/p> ?o . } LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.rows.size(), 3u);
  EXPECT_FALSE(SawAnyPushedLimit());
}

TEST_F(LimitPushdownTest, OrderBySuppressesThePushdownAndSortsGlobally) {
  core::LusailEngine engine(&federation_);
  Result<fed::FederatedResult> result = engine.Execute(
      std::string(kScan) + " ORDER BY ?o LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(SawAnyPushedLimit());
  ASSERT_EQ(result->table.rows.size(), 3u);
  // The global sort's first three: o = 0, 1, 2.
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(result->table.rows[i][1].has_value());
    EXPECT_EQ(result->table.rows[i][1]->lexical(), std::to_string(i));
  }
}

TEST_F(LimitPushdownTest, FirstRowLatencyLandsInTheProfile) {
  core::LusailEngine engine(&federation_);
  Result<fed::FederatedResult> result = engine.Execute(kScan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->profile.first_row_ms, 0.0);
  obs::JsonValue json = fed::ProfileToJson(result->profile);
  EXPECT_NE(json.Pretty().find("first_row_ms"), std::string::npos);
}

// ---------------------------------------------------------------------
// Loopback federation: pushdown end-to-end over real sockets
// ---------------------------------------------------------------------

TEST(LoopbackPushdownTest, LimitedFederatedQueryStaysExactOverTheWire) {
  workload::LubmConfig config = workload::LubmConfig::Small();
  config.num_universities = 3;
  std::vector<workload::EndpointSpec> specs =
      workload::LubmGenerator(config).GenerateAll();

  fed::Federation remote;
  std::vector<std::unique_ptr<HttpServer>> servers;
  for (const auto& spec : specs) {
    auto store = std::make_unique<store::TripleStore>();
    for (const auto& triple : spec.triples) store->Add(triple);
    store->Freeze();
    auto endpoint = std::make_shared<net::SparqlEndpoint>(
        spec.id, std::move(store), net::LatencyModel::None());
    auto server = std::make_unique<HttpServer>(endpoint);
    ASSERT_TRUE(server->Start().ok());
    remote.Add(std::make_shared<HttpSparqlEndpoint>(spec.id, "127.0.0.1",
                                                    server->port()));
    servers.push_back(std::move(server));
  }

  core::LusailEngine engine(&remote);
  const std::string query = workload::LubmGenerator::QueryQa();
  Result<fed::FederatedResult> full = engine.Execute(query);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_GT(full->table.rows.size(), 3u);
  std::vector<std::string> full_rows = CanonicalRows(full->table);

  Result<fed::FederatedResult> limited = engine.Execute(query + " LIMIT 3");
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  EXPECT_EQ(limited->table.rows.size(), 3u);
  for (const std::string& row : CanonicalRows(limited->table)) {
    EXPECT_TRUE(
        std::binary_search(full_rows.begin(), full_rows.end(), row))
        << "limited run invented row " << row;
  }
  for (auto& server : servers) server->Stop();
}

}  // namespace
}  // namespace lusail
