#include <gtest/gtest.h>

#include "baselines/fedx_engine.h"
#include "baselines/hibiscus.h"
#include "baselines/splendid_engine.h"
#include "core/lusail_engine.h"
#include "workload/federation_builder.h"
#include "workload/qfed_generator.h"

namespace lusail::baselines {
namespace {

using workload::BuildFederation;

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::QFedGenerator gen(workload::QFedConfig::Small());
    federation_ =
        BuildFederation(gen.GenerateAll(), net::LatencyModel::None());
  }

  std::unique_ptr<fed::Federation> federation_;
};

TEST_F(BaselinesTest, FedXAnswersC2P2) {
  FedXEngine fedx(federation_.get());
  auto result = fedx.Execute(workload::QFedGenerator::C2P2());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->table.NumRows(), 0u);
  EXPECT_GT(result->profile.requests, 0u);
}

TEST_F(BaselinesTest, FedXSequentialBoundJoinsIssueMoreRequestsThanLusail) {
  // The paper's central observation: schema-only decomposition sends far
  // more requests than instance-aware decomposition. The effect needs
  // full benchmark scale (at toy scale both engines issue a handful of
  // requests and analysis probes dominate).
  workload::QFedGenerator gen{workload::QFedConfig()};
  auto full = BuildFederation(gen.GenerateAll(), net::LatencyModel::None());
  FedXEngine fedx(full.get());
  core::LusailEngine lusail(full.get());
  std::string query = workload::QFedGenerator::C2P2B();
  auto fedx_result = fedx.Execute(query);
  auto lusail_result = lusail.Execute(query);
  ASSERT_TRUE(fedx_result.ok());
  ASSERT_TRUE(lusail_result.ok());
  EXPECT_GT(fedx_result->profile.requests, lusail_result->profile.requests);
}

TEST_F(BaselinesTest, FedXTimesOutCooperatively) {
  FedXEngine fedx(federation_.get());
  auto result = fedx.Execute(workload::QFedGenerator::C2P2B(),
                             Deadline::AfterMillis(0.01));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST_F(BaselinesTest, HibiscusAuthorityExtraction) {
  EXPECT_EQ(HibiscusIndex::Authority(
                rdf::Term::Iri("http://drugbank.example.org/resource/x/1")),
            "http://drugbank.example.org");
  EXPECT_EQ(HibiscusIndex::Authority(rdf::Term::Literal("v")), "~lit");
  EXPECT_EQ(HibiscusIndex::Authority(rdf::Term::BlankNode("b")), "~bnode");
  EXPECT_EQ(HibiscusIndex::Authority(rdf::Term::Iri("urn:isbn:123")),
            "urn:isbn:123");
}

TEST_F(BaselinesTest, HibiscusPrunesByPredicate) {
  HibiscusIndex index = HibiscusIndex::Build(*federation_);
  sparql::TriplePattern tp{
      sparql::Variable{"d"},
      rdf::Term::Iri("http://drugbank.example.org/vocab#name"),
      sparql::Variable{"n"}};
  auto sources = index.Sources(tp);
  ASSERT_TRUE(sources.has_value());
  EXPECT_EQ(*sources, (std::vector<int>{0}));  // Only drugbank.
}

TEST_F(BaselinesTest, HibiscusPrunesByObjectAuthority) {
  HibiscusIndex index = HibiscusIndex::Build(*federation_);
  // possibleDrug objects live under drugbank.example.org; an object from a
  // foreign authority must prune diseasome away.
  sparql::TriplePattern match{
      sparql::Variable{"x"},
      rdf::Term::Iri("http://diseasome.example.org/vocab#possibleDrug"),
      rdf::Term::Iri("http://drugbank.example.org/resource/drugs/3")};
  sparql::TriplePattern miss{
      sparql::Variable{"x"},
      rdf::Term::Iri("http://diseasome.example.org/vocab#possibleDrug"),
      rdf::Term::Iri("http://elsewhere.example.net/thing")};
  EXPECT_FALSE(index.Sources(match)->empty());
  EXPECT_TRUE(index.Sources(miss)->empty());
}

TEST_F(BaselinesTest, HibiscusFallsBackOnVariablePredicate) {
  HibiscusIndex index = HibiscusIndex::Build(*federation_);
  sparql::TriplePattern tp{sparql::Variable{"s"}, sparql::Variable{"p"},
                           sparql::Variable{"o"}};
  EXPECT_FALSE(index.Sources(tp).has_value());
}

TEST_F(BaselinesTest, HibiscusAvoidsAskProbes) {
  HibiscusIndex index = HibiscusIndex::Build(*federation_);
  FedXEngine with_index(federation_.get());
  with_index.set_source_provider(&index);
  EXPECT_EQ(with_index.name(), "FedX+HiBISCuS");
  auto result = with_index.Execute(workload::QFedGenerator::C2P2F());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->profile.ask_requests, 0u)
      << "index-based source selection needs no ASK probes";
  EXPECT_GT(result->table.NumRows(), 0u);
}

TEST_F(BaselinesTest, SplendidIndexEnablesSourceSelection) {
  SplendidEngine splendid(federation_.get());
  splendid.BuildIndex();
  EXPECT_GE(splendid.index_build_millis(), 0.0);
  auto result = splendid.Execute(workload::QFedGenerator::C2P2F());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->table.NumRows(), 0u);
  EXPECT_EQ(result->profile.ask_requests, 0u);
}

TEST_F(BaselinesTest, SplendidWithoutIndexStillWorks) {
  SplendidEngine splendid(federation_.get());
  auto result = splendid.Execute(workload::QFedGenerator::C2P2F());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->table.NumRows(), 0u);
  EXPECT_GT(result->profile.ask_requests, 0u);
}

TEST_F(BaselinesTest, FedXLimitCutsRequestsShort) {
  // FedX terminates early once LIMIT results exist (the paper's C4
  // observation); Lusail computes the complete result first.
  FedXEngine fedx(federation_.get());
  std::string base = workload::QFedGenerator::C2P2();
  std::string limited = base + " LIMIT 3";
  auto full = fedx.Execute(base);
  auto cut = fedx.Execute(limited);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->table.NumRows(), 3u);
  EXPECT_LT(cut->profile.requests, full->profile.requests);
}

}  // namespace
}  // namespace lusail::baselines

namespace lusail::baselines {
namespace {

TEST(HibiscusJoinPruningTest, PrunesSourcesWithDisjointJoinAuthorities) {
  using rdf::Term;
  // Two endpoints share the predicate vocabulary, but their :link objects
  // point into different namespaces; only ep0's objects can join the
  // :name subjects (which live at ep0's target namespace only).
  std::vector<workload::EndpointSpec> specs(3);
  specs[0].id = "ep0";
  specs[0].triples = {
      {Term::Iri("http://a.org/x1"), Term::Iri("http://v/link"),
       Term::Iri("http://target.org/t1")}};
  specs[1].id = "ep1";
  specs[1].triples = {
      {Term::Iri("http://b.org/x2"), Term::Iri("http://v/link"),
       Term::Iri("http://elsewhere.org/e1")}};
  specs[2].id = "ep2";
  specs[2].triples = {
      {Term::Iri("http://target.org/t1"), Term::Iri("http://v/name"),
       Term::Literal("T1")}};
  auto federation =
      workload::BuildFederation(specs, net::LatencyModel::None());
  HibiscusIndex index = HibiscusIndex::Build(*federation);

  auto q = sparql::ParseQuery(
      "SELECT * WHERE { ?x <http://v/link> ?t . ?t <http://v/name> ?n . }");
  ASSERT_TRUE(q.ok());
  std::vector<std::vector<int>> sources = {
      *index.Sources(q->where.triples[0]),
      *index.Sources(q->where.triples[1])};
  ASSERT_EQ(sources[0], (std::vector<int>{0, 1}));
  ASSERT_EQ(sources[1], (std::vector<int>{2}));

  index.PruneJointSources(q->where.triples, &sources);
  // ep1's link objects (elsewhere.org) cannot join ep2's name subjects
  // (target.org): join-aware pruning drops ep1.
  EXPECT_EQ(sources[0], (std::vector<int>{0}));
  EXPECT_EQ(sources[1], (std::vector<int>{2}));
}

TEST(HibiscusJoinPruningTest, KeepsLiteralJoins) {
  using rdf::Term;
  std::vector<workload::EndpointSpec> specs(2);
  specs[0].id = "ep0";
  specs[0].triples = {{Term::Iri("http://a.org/x"),
                       Term::Iri("http://v/nameA"), Term::Literal("X")}};
  specs[1].id = "ep1";
  specs[1].triples = {{Term::Iri("http://b.org/y"),
                       Term::Iri("http://v/nameB"), Term::Literal("X")}};
  auto federation =
      workload::BuildFederation(specs, net::LatencyModel::None());
  HibiscusIndex index = HibiscusIndex::Build(*federation);
  auto q = sparql::ParseQuery(
      "SELECT * WHERE { ?a <http://v/nameA> ?n . ?b <http://v/nameB> ?n . }");
  ASSERT_TRUE(q.ok());
  std::vector<std::vector<int>> sources = {{0}, {1}};
  index.PruneJointSources(q->where.triples, &sources);
  EXPECT_EQ(sources[0], (std::vector<int>{0}))
      << "literal-literal joins must survive";
  EXPECT_EQ(sources[1], (std::vector<int>{1}));
}

}  // namespace
}  // namespace lusail::baselines
