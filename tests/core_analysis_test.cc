// Unit tests for the LADE analysis machinery: the query graph, GJV
// detection (Algorithm 1), and query decomposition (Algorithm 2).

#include <gtest/gtest.h>

#include "core/decomposer.h"
#include "core/gjv_detector.h"
#include "core/query_graph.h"
#include "sparql/parser.h"
#include "workload/federation_builder.h"

namespace lusail::core {
namespace {

using sparql::TriplePattern;
using workload::BuildFederation;
using workload::Figure1Federation;

std::vector<TriplePattern> ParseBgp(const std::string& text) {
  auto q = sparql::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q->where.triples;
}

// ---------------------------------------------------------------------
// QueryGraph
// ---------------------------------------------------------------------

TEST(QueryGraphTest, JoinVariablesWithRoles) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?s <http://p> ?x . ?x <http://q> ?o . "
      "?s <http://r> ?y . }");
  auto jvs = QueryGraph::JoinVariables(triples);
  ASSERT_EQ(jvs.size(), 2u);  // ?s and ?x (each in 2 patterns); ?o, ?y once.
  const JoinVariable* s = nullptr;
  const JoinVariable* x = nullptr;
  for (const auto& jv : jvs) {
    if (jv.name == "s") s = &jv;
    if (jv.name == "x") x = &jv;
  }
  ASSERT_NE(s, nullptr);
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(s->SubjectOnly());
  EXPECT_FALSE(x->SubjectOnly());
  EXPECT_FALSE(x->ObjectOnly());
}

TEST(QueryGraphTest, TypePatternsAreRestrictionsNotOccurrences) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?x a <http://T> . ?x <http://p> ?y . "
      "?x <http://q> ?z . }");
  auto jvs = QueryGraph::JoinVariables(triples);
  ASSERT_EQ(jvs.size(), 1u);
  EXPECT_EQ(jvs[0].name, "x");
  EXPECT_EQ(jvs[0].occurrences.size(), 2u);
  EXPECT_EQ(jvs[0].type_patterns.size(), 1u);
}

TEST(QueryGraphTest, PredicateVariableIsFlagged) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?s ?p ?o . ?x <http://q> ?p . }");
  auto jvs = QueryGraph::JoinVariables(triples);
  ASSERT_EQ(jvs.size(), 1u);
  EXPECT_TRUE(jvs[0].HasPredicateRole());
}

TEST(QueryGraphTest, ConnectedComponents) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . "
      "?x <http://r> ?y . }");
  QueryGraph graph(triples);
  auto components = graph.ConnectedComponents();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].size() + components[1].size(), 3u);
}

TEST(QueryGraphTest, ConstantsDoNotConnectPatterns) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?a <http://p> <http://k> . "
      "<http://k> <http://q> ?b . }");
  QueryGraph graph(triples);
  EXPECT_EQ(graph.ConnectedComponents().size(), 2u);
}

TEST(QueryGraphTest, EdgesAndDestinations) {
  auto triples = ParseBgp("SELECT * WHERE { ?a <http://p> ?b . }");
  QueryGraph graph(triples);
  EXPECT_EQ(graph.Edges("?a").size(), 1u);
  EXPECT_EQ(graph.Destination("?a", 0), "?b");
  EXPECT_EQ(graph.Destination("?b", 0), "?a");
  EXPECT_TRUE(graph.Edges("?zzz").empty());
}

// ---------------------------------------------------------------------
// GJV detection against the Figure 1 federation
// ---------------------------------------------------------------------

class GjvDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    federation_ = BuildFederation(Figure1Federation(),
                                  net::LatencyModel::None());
  }

  GjvResult Detect(const std::string& query_text, bool use_cache = true) {
    auto q = sparql::ParseQuery(query_text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    fed::SourceSelector selector(federation_.get(), &ask_cache_, &pool_);
    fed::MetricsCollector metrics;
    auto sources = selector.SelectSources(q->where.triples, &metrics,
                                          Deadline(), true);
    EXPECT_TRUE(sources.ok());
    GjvDetector detector(federation_.get(), &check_cache_, &pool_);
    auto result = detector.Detect(q->where.triples, *sources, &metrics,
                                  Deadline(), use_cache);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  std::unique_ptr<fed::Federation> federation_;
  fed::AskCache ask_cache_;
  fed::AskCache check_cache_;
  ThreadPool pool_{4};
};

TEST_F(GjvDetectorTest, SubjectObjectCaseDetectsInterlink) {
  // ?U: object of PhDDegreeFrom, subject of address. Tim's remote degree
  // makes it global.
  GjvResult r = Detect(workload::Figure2QueryQa());
  EXPECT_TRUE(r.IsGjv("U"));
  EXPECT_TRUE(r.IsGjv("P"));
  EXPECT_FALSE(r.IsGjv("S"));
  EXPECT_FALSE(r.IsGjv("C"));
}

TEST_F(GjvDetectorTest, CausingPairsAreRecorded) {
  GjvResult r = Detect(workload::Figure2QueryQa());
  ASSERT_TRUE(r.causes.count("U"));
  // Exactly one pair causes ?U: (PhDDegreeFrom, address).
  EXPECT_EQ(r.causes.at("U").size(), 1u);
  auto [a, b] = *r.causes.at("U").begin();
  EXPECT_TRUE(r.IsCausingPair(a, b));
  EXPECT_TRUE(r.IsCausingPair(b, a));
  EXPECT_FALSE(r.IsCausingPair(a, a));
}

TEST_F(GjvDetectorTest, LocalJoinVariableHasNoChecksRecorded) {
  GjvResult r = Detect(
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?S WHERE { ?S ub:advisor ?P . ?S ub:takesCourse ?C . }");
  EXPECT_TRUE(r.causes.empty());
  EXPECT_GT(r.check_queries, 0u);
}

TEST_F(GjvDetectorTest, CheckQueriesAreCached) {
  GjvResult first = Detect(workload::Figure2QueryQa());
  EXPECT_GT(first.check_queries, 0u);
  GjvResult second = Detect(workload::Figure2QueryQa());
  EXPECT_EQ(second.check_queries, 0u) << "cache hit must avoid re-probing";
  EXPECT_EQ(second.GjvNames(), first.GjvNames());
}

TEST_F(GjvDetectorTest, CacheBypassReprobes) {
  Detect(workload::Figure2QueryQa());
  GjvResult uncached = Detect(workload::Figure2QueryQa(), /*use_cache=*/false);
  EXPECT_GT(uncached.check_queries, 0u);
}

TEST_F(GjvDetectorTest, CheckQueryTextMatchesFigure5Shape) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?S <http://pi> ?P . ?P <http://pj> ?C . "
      "?P a <http://T> . }");
  std::string text = GjvDetector::CheckQueryText(
      "P", triples[0], triples[1], {triples[2]});
  EXPECT_NE(text.find("SELECT ?P WHERE"), std::string::npos);
  EXPECT_NE(text.find("FILTER NOT EXISTS { SELECT ?P WHERE"),
            std::string::npos);
  EXPECT_NE(text.find("LIMIT 1"), std::string::npos);
  EXPECT_NE(text.find("<http://T>"), std::string::npos);
  // The check query must itself be parseable by our engine.
  EXPECT_TRUE(sparql::ParseQuery(text).ok());
}

// ---------------------------------------------------------------------
// Decomposer
// ---------------------------------------------------------------------

class DecomposerTest : public ::testing::Test {
 protected:
  Decomposition Decompose(const std::vector<TriplePattern>& triples,
                          const std::vector<std::vector<int>>& sources,
                          const GjvResult& gjvs,
                          const std::set<std::string>& needed) {
    // Cost model with no statistics: all cardinalities are zero, which is
    // fine for structural assertions.
    fed::Federation empty_fed;
    ThreadPool pool(2);
    CostModel cost_model(&empty_fed, &pool);
    Decomposer decomposer(&cost_model);
    return decomposer.Decompose(triples, sources, gjvs, {}, needed);
  }
};

TEST_F(DecomposerTest, NoGjvsYieldsOneSubqueryPerComponent) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . }");
  std::vector<std::vector<int>> sources = {{0, 1}, {0, 1}};
  Decomposition d = Decompose(triples, sources, GjvResult(), {"a", "c"});
  ASSERT_EQ(d.subqueries.size(), 1u);
  EXPECT_EQ(d.subqueries[0].triple_indices.size(), 2u);
  EXPECT_EQ(d.subqueries[0].sources, (std::vector<int>{0, 1}));
}

TEST_F(DecomposerTest, CausingPairIsSeparated) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?a <http://p> ?x . ?x <http://q> ?c . }");
  std::vector<std::vector<int>> sources = {{0, 1}, {0, 1}};
  GjvResult gjvs;
  gjvs.causes["x"].insert({0, 1});
  Decomposition d = Decompose(triples, sources, gjvs, {"a", "c"});
  ASSERT_EQ(d.subqueries.size(), 2u);
  // ?x must be projected from both (it is the global join key).
  for (const Subquery& sq : d.subqueries) {
    EXPECT_NE(std::find(sq.projection.begin(), sq.projection.end(), "x"),
              sq.projection.end());
  }
}

TEST_F(DecomposerTest, NonCausingPairsWithGjvStayTogether) {
  // ?x is a GJV via (0,1) but patterns 1 and 2 may still share a subquery.
  auto triples = ParseBgp(
      "SELECT * WHERE { ?a <http://p> ?x . ?x <http://q> ?c . "
      "?x <http://r> ?d . }");
  std::vector<std::vector<int>> sources = {{0, 1}, {0, 1}, {0, 1}};
  GjvResult gjvs;
  gjvs.causes["x"].insert({0, 1});
  gjvs.causes["x"].insert({0, 2});
  Decomposition d = Decompose(triples, sources, gjvs, {"a", "c", "d"});
  ASSERT_EQ(d.subqueries.size(), 2u);
  // One subquery holds pattern 0; the other holds patterns 1 and 2.
  bool found_pair = false;
  for (const Subquery& sq : d.subqueries) {
    if (sq.triple_indices == std::vector<int>{1, 2}) found_pair = true;
  }
  EXPECT_TRUE(found_pair);
}

TEST_F(DecomposerTest, DifferentSourcesSplit) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?a <http://p> ?x . ?x <http://q> ?c . }");
  std::vector<std::vector<int>> sources = {{0}, {1}};
  GjvResult gjvs;
  gjvs.causes["x"].insert({0, 1});
  Decomposition d = Decompose(triples, sources, gjvs, {"a", "c"});
  ASSERT_EQ(d.subqueries.size(), 2u);
  EXPECT_NE(d.subqueries[0].sources, d.subqueries[1].sources);
}

TEST_F(DecomposerTest, EveryTripleAssignedExactlyOnce) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?s <http://a> ?x . ?x <http://b> ?y . "
      "?y <http://c> ?z . ?z <http://d> ?w . ?s <http://e> ?w . }");
  std::vector<std::vector<int>> sources(5, std::vector<int>{0, 1});
  GjvResult gjvs;
  gjvs.causes["y"].insert({1, 2});
  Decomposition d = Decompose(triples, sources, gjvs, {"s", "w"});
  std::multiset<int> assigned;
  for (const Subquery& sq : d.subqueries) {
    assigned.insert(sq.triple_indices.begin(), sq.triple_indices.end());
  }
  EXPECT_EQ(assigned, (std::multiset<int>{0, 1, 2, 3, 4}));
}

TEST_F(DecomposerTest, DisconnectedComponentsDecomposeIndependently) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?a <http://p> ?n1 . ?b <http://q> ?n2 . }");
  std::vector<std::vector<int>> sources = {{0}, {1}};
  Decomposition d = Decompose(triples, sources, GjvResult(), {"n1", "n2"});
  EXPECT_EQ(d.subqueries.size(), 2u);
}

TEST_F(DecomposerTest, FiltersPushedIntoCoveringSubquery) {
  auto triples = ParseBgp(
      "SELECT * WHERE { ?a <http://p> ?x . ?x <http://q> ?c . }");
  std::vector<std::vector<int>> sources = {{0}, {1}};
  GjvResult gjvs;
  gjvs.causes["x"].insert({0, 1});
  sparql::Expr local = sparql::Expr::Binary(
      sparql::ExprOp::kGt, sparql::Expr::Var("c"),
      sparql::Expr::Const(rdf::Term::Integer(5)));
  sparql::Expr global = sparql::Expr::Binary(
      sparql::ExprOp::kNe, sparql::Expr::Var("a"), sparql::Expr::Var("c"));
  fed::Federation empty_fed;
  ThreadPool pool(2);
  CostModel cost_model(&empty_fed, &pool);
  Decomposer decomposer(&cost_model);
  Decomposition d = decomposer.Decompose(triples, sources, gjvs,
                                         {local, global}, {"a", "c"});
  ASSERT_EQ(d.subqueries.size(), 2u);
  EXPECT_EQ(d.global_filters.size(), 1u);
  size_t pushed = d.subqueries[0].filters.size() +
                  d.subqueries[1].filters.size();
  EXPECT_EQ(pushed, 1u);
}

}  // namespace
}  // namespace lusail::core
