// Cross-engine result-consistency property tests: for every benchmark
// query of every workload, Lusail (in all of its configurations), FedX,
// FedX+HiBISCuS and SPLENDID must return exactly the oracle answer — the
// query evaluated over the union of all endpoint data. This is the
// repository's strongest correctness net (paper Section 3.3, Lemmas 1-2).

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "baselines/anapsid_engine.h"
#include "baselines/fedx_engine.h"
#include "baselines/hibiscus.h"
#include "baselines/splendid_engine.h"
#include "core/lusail_engine.h"
#include "sparql/evaluator.h"
#include "sparql/parser.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lrb_generator.h"
#include "workload/lubm_generator.h"
#include "workload/qfed_generator.h"

namespace lusail {
namespace {

using workload::EndpointSpec;

std::multiset<std::string> RowBag(const sparql::ResultTable& table,
                                  bool as_set = false) {
  std::vector<size_t> order(table.vars.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return table.vars[a] < table.vars[b];
  });
  std::multiset<std::string> rows;
  for (const auto& row : table.rows) {
    std::string line;
    for (size_t i : order) {
      line += table.vars[i] + "=" +
              (row[i].has_value() ? row[i]->ToString() : "UNDEF") + "|";
    }
    rows.insert(line);
  }
  if (as_set) {
    std::multiset<std::string> dedup;
    std::string last;
    for (const std::string& r : rows) {
      if (r != last) dedup.insert(r);
      last = r;
    }
    return dedup;
  }
  return rows;
}

struct WorkloadCase {
  std::string name;
  std::vector<EndpointSpec> specs;
  std::vector<std::pair<std::string, std::string>> queries;
};

std::vector<WorkloadCase> MakeCases() {
  std::vector<WorkloadCase> cases;
  {
    WorkloadCase c;
    c.name = "figure1";
    c.specs = workload::Figure1Federation();
    c.queries = {{"Qa", workload::Figure2QueryQa()}};
    cases.push_back(std::move(c));
  }
  {
    WorkloadCase c;
    c.name = "lubm";
    c.specs =
        workload::LubmGenerator(workload::LubmConfig::Small()).GenerateAll();
    c.queries = workload::LubmGenerator::BenchmarkQueries();
    c.queries.push_back({"Qa", workload::LubmGenerator::QueryQa()});
    cases.push_back(std::move(c));
  }
  {
    WorkloadCase c;
    c.name = "qfed";
    c.specs =
        workload::QFedGenerator(workload::QFedConfig::Small()).GenerateAll();
    c.queries = workload::QFedGenerator::BenchmarkQueries();
    cases.push_back(std::move(c));
  }
  {
    WorkloadCase c;
    c.name = "lrb";
    c.specs =
        workload::LrbGenerator(workload::LrbConfig::Small()).GenerateAll();
    for (const auto& q : workload::LrbGenerator::SimpleQueries()) {
      c.queries.push_back(q);
    }
    for (const auto& q : workload::LrbGenerator::ComplexQueries()) {
      c.queries.push_back(q);
    }
    for (const auto& q : workload::LrbGenerator::LargeQueries()) {
      c.queries.push_back(q);
    }
    for (const auto& q : workload::LrbGenerator::Bio2RdfQueries()) {
      c.queries.push_back(q);
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

/// Oracle: evaluate over the union graph with the local engine.
sparql::ResultTable Oracle(const std::vector<EndpointSpec>& specs,
                           const std::string& text) {
  store::TripleStore store;
  for (const EndpointSpec& spec : specs) {
    for (const rdf::TermTriple& t : spec.triples) store.Add(t);
  }
  store.Freeze();
  sparql::Evaluator evaluator(&store);
  auto query = sparql::ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  auto result = evaluator.Execute(*query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

class ConsistencyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ConsistencyTest, AllEnginesMatchOracle) {
  static const std::vector<WorkloadCase> kCases = MakeCases();
  const WorkloadCase& wc = kCases[GetParam()];
  auto federation =
      workload::BuildFederation(wc.specs, net::LatencyModel::None());

  core::LusailEngine lusail(federation.get());
  core::LusailOptions lade_only;
  lade_only.enable_sape = false;
  core::LusailEngine lusail_lade(federation.get(), lade_only);
  baselines::FedXEngine fedx(federation.get());
  baselines::HibiscusIndex hibiscus =
      baselines::HibiscusIndex::Build(*federation);
  baselines::FedXEngine fedx_hibiscus(federation.get());
  fedx_hibiscus.set_source_provider(&hibiscus);
  baselines::SplendidEngine splendid(federation.get());
  splendid.BuildIndex();
  baselines::AnapsidEngine anapsid(federation.get());

  std::vector<fed::FederatedEngine*> engines = {
      &lusail, &lusail_lade, &fedx, &fedx_hibiscus, &splendid, &anapsid};

  for (const auto& [label, query_text] : wc.queries) {
    sparql::ResultTable oracle = Oracle(wc.specs, query_text);
    auto parsed = sparql::ParseQuery(query_text);
    ASSERT_TRUE(parsed.ok());
    // LIMIT queries pick an arbitrary subset; compare row counts only.
    bool limited = parsed->limit.has_value();
    for (fed::FederatedEngine* engine : engines) {
      auto result = engine->Execute(query_text);
      if (!result.ok()) {
        // Baselines are allowed to reject unsupported shapes (the paper's
        // "runtime error" entries); Lusail must execute everything.
        EXPECT_TRUE(result.status().code() == StatusCode::kUnsupported &&
                    engine->name() != "Lusail" &&
                    engine->name() != "Lusail-LADE")
            << wc.name << "/" << label << " on " << engine->name() << ": "
            << result.status().ToString();
        continue;
      }
      if (limited) {
        EXPECT_EQ(result->table.NumRows(), oracle.NumRows())
            << wc.name << "/" << label << " on " << engine->name();
      } else {
        EXPECT_EQ(RowBag(result->table), RowBag(oracle))
            << wc.name << "/" << label << " on " << engine->name();
      }
    }
  }
}

std::string WorkloadCaseName(const ::testing::TestParamInfo<size_t>& info) {
  static const char* kNames[] = {"figure1", "lubm", "qfed", "lrb"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ConsistencyTest,
                         ::testing::Range<size_t>(0, 4), WorkloadCaseName);

/// The delay-threshold options must not change results, only performance.
class ThresholdConsistencyTest
    : public ::testing::TestWithParam<core::DelayThreshold> {};

TEST_P(ThresholdConsistencyTest, ThresholdDoesNotChangeResults) {
  auto specs =
      workload::QFedGenerator(workload::QFedConfig::Small()).GenerateAll();
  auto federation =
      workload::BuildFederation(specs, net::LatencyModel::None());
  core::LusailOptions options;
  options.delay_threshold = GetParam();
  core::LusailEngine engine(federation.get(), options);
  for (const auto& [label, query] :
       workload::QFedGenerator::BenchmarkQueries()) {
    auto result = engine.Execute(query);
    ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    sparql::ResultTable oracle = Oracle(specs, query);
    EXPECT_EQ(RowBag(result->table), RowBag(oracle)) << label;
  }
}

std::string ThresholdName(
    const ::testing::TestParamInfo<core::DelayThreshold>& info) {
  switch (info.param) {
    case core::DelayThreshold::kMu:
      return "Mu";
    case core::DelayThreshold::kMuSigma:
      return "MuSigma";
    case core::DelayThreshold::kMu2Sigma:
      return "Mu2Sigma";
    case core::DelayThreshold::kOutliersOnly:
      return "OutliersOnly";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(AllThresholds, ThresholdConsistencyTest,
                         ::testing::Values(
                             core::DelayThreshold::kMu,
                             core::DelayThreshold::kMuSigma,
                             core::DelayThreshold::kMu2Sigma,
                             core::DelayThreshold::kOutliersOnly),
                         ThresholdName);

}  // namespace
}  // namespace lusail
