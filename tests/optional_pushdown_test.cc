// Tests for OPTIONAL push-down: endpoint-local optional blocks must be
// evaluated inside subqueries (visible through endpoint request counts
// and result equality), while cross-endpoint optionals stay at the
// federator.

#include <gtest/gtest.h>

#include "core/lusail_engine.h"
#include "net/sparql_endpoint.h"
#include "sparql/evaluator.h"
#include "sparql/parser.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/qfed_generator.h"

namespace lusail {
namespace {

std::multiset<std::string> RowBag(const sparql::ResultTable& table) {
  std::vector<size_t> order(table.vars.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return table.vars[a] < table.vars[b];
  });
  std::multiset<std::string> rows;
  for (const auto& row : table.rows) {
    std::string line;
    for (size_t i : order) {
      line += table.vars[i] + "=" +
              (row[i].has_value() ? row[i]->ToString() : "UNDEF") + "|";
    }
    rows.insert(line);
  }
  return rows;
}

class OptionalPushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::QFedGenerator gen(workload::QFedConfig::Small());
    specs_ = gen.GenerateAll();
    federation_ =
        workload::BuildFederation(specs_, net::LatencyModel::None());
  }

  sparql::ResultTable Oracle(const std::string& text) {
    store::TripleStore store;
    for (const auto& spec : specs_) {
      for (const rdf::TermTriple& t : spec.triples) store.Add(t);
    }
    store.Freeze();
    sparql::Evaluator evaluator(&store);
    auto query = sparql::ParseQuery(text);
    EXPECT_TRUE(query.ok());
    auto result = evaluator.Execute(*query);
    EXPECT_TRUE(result.ok());
    return *result;
  }

  uint64_t DailymedRequests() {
    // Endpoint index 3 is dailymed.
    auto* ep =
        dynamic_cast<net::SparqlEndpoint*>(federation_->endpoint(3));
    return ep->stats().requests;
  }

  std::vector<workload::EndpointSpec> specs_;
  std::unique_ptr<fed::Federation> federation_;
};

TEST_F(OptionalPushdownTest, LocalOptionalIsPushedIntoSubquery) {
  // ?label dm:description ?desc is colocated with ?label dm:genericDrug
  // at dailymed: the OPTIONAL must execute inside the dailymed subquery,
  // not as a separate federator-level pipeline (which needs its own
  // source selection, analysis, and fetch round).
  std::string query = workload::QFedGenerator::C2P2BO();

  core::LusailEngine with_pushdown(federation_.get());
  auto pushed = with_pushdown.Execute(query);
  ASSERT_TRUE(pushed.ok()) << pushed.status().ToString();
  EXPECT_EQ(RowBag(pushed->table), RowBag(Oracle(query)));

  core::LusailOptions no_pushdown_options;
  no_pushdown_options.enable_optional_pushdown = false;
  core::LusailEngine without_pushdown(federation_.get(),
                                      no_pushdown_options);
  auto federated = without_pushdown.Execute(query);
  ASSERT_TRUE(federated.ok()) << federated.status().ToString();
  EXPECT_EQ(RowBag(federated->table), RowBag(pushed->table))
      << "push-down must not change results";

  // The decision itself is observable in the profile.
  EXPECT_EQ(pushed->profile.pushed_optionals, 1u);
  EXPECT_EQ(federated->profile.pushed_optionals, 0u);
}

TEST_F(OptionalPushdownTest, CrossEndpointOptionalStaysAtFederator) {
  // OPTIONAL { ?drug db:indication ?ind } attaches to ?drug, which is
  // bound at *diseasome* (possibleDrug) in the mandatory part — the
  // optional's pattern lives at drugbank, a different source list, so it
  // must not be pushed, and results must still match the oracle.
  std::string query = R"(
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX db: <http://drugbank.example.org/vocab#>
PREFIX dis: <http://diseasome.example.org/vocab#>
SELECT ?disease ?drug ?ind WHERE {
  ?disease rdf:type dis:disease .
  ?disease dis:possibleDrug ?drug .
  OPTIONAL { ?drug db:indication ?ind . }
})";
  core::LusailEngine engine(federation_.get());
  auto result = engine.Execute(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RowBag(result->table), RowBag(Oracle(query)));
  EXPECT_EQ(result->profile.pushed_optionals, 0u)
      << "cross-endpoint optional must not be pushed";
  // Every disease-drug pair survives (left join semantics).
  auto mandatory = engine.Execute(
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "PREFIX dis: <http://diseasome.example.org/vocab#>\n"
      "SELECT ?disease ?drug WHERE { ?disease rdf:type dis:disease . "
      "?disease dis:possibleDrug ?drug . }");
  ASSERT_TRUE(mandatory.ok());
  EXPECT_EQ(result->table.NumRows(), mandatory->table.NumRows());
}

TEST_F(OptionalPushdownTest, OptionalFilterTravelsWithTheBlock) {
  std::string query = R"(
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dm: <http://dailymed.example.org/vocab#>
SELECT ?label ?ing ?desc WHERE {
  ?label rdf:type dm:drugs .
  ?label dm:activeIngredient ?ing .
  OPTIONAL { ?label dm:description ?desc . FILTER (CONTAINS(?desc, "the")) }
})";
  core::LusailEngine engine(federation_.get());
  auto result = engine.Execute(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RowBag(result->table), RowBag(Oracle(query)));
}

TEST_F(OptionalPushdownTest, TwoLocalOptionalsBothPush) {
  std::string query = R"(
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX dm: <http://dailymed.example.org/vocab#>
SELECT ?label ?ing ?desc WHERE {
  ?label rdf:type dm:drugs .
  OPTIONAL { ?label dm:activeIngredient ?ing . }
  OPTIONAL { ?label dm:description ?desc . }
})";
  core::LusailEngine engine(federation_.get());
  auto result = engine.Execute(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RowBag(result->table), RowBag(Oracle(query)));
  EXPECT_EQ(result->profile.pushed_optionals, 2u);
}

TEST_F(OptionalPushdownTest, SubqueryToSparqlRendersOptionals) {
  core::Subquery sq;
  sq.projection = {"s", "o"};
  sq.triple_indices = {0};
  std::vector<sparql::TriplePattern> triples = {
      {sparql::Variable{"s"}, rdf::Term::Iri("http://p"),
       sparql::Variable{"o"}}};
  core::PushedOptional opt;
  opt.triples.push_back({sparql::Variable{"s"}, rdf::Term::Iri("http://q"),
                         sparql::Variable{"x"}});
  sq.optionals.push_back(opt);
  std::string text = sq.ToSparql(triples);
  EXPECT_NE(text.find("OPTIONAL"), std::string::npos);
  EXPECT_TRUE(sparql::ParseQuery(text).ok()) << text;
}

}  // namespace
}  // namespace lusail
