// Tests for the sharded data plane: ShardMap determinism and --shards
// parsing, loader/router agreement on N-Triples splits, scatter-gather
// row identity against an unsharded oracle, subject-constant routing,
// ASK/COUNT pruning through the federation cache, partial-results
// degradation when a shard dies, and the 4-shard loopback end-to-end
// with a mid-query shard kill.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/federation_cache.h"
#include "core/id_table.h"
#include "core/lusail_engine.h"
#include "net/fault_injection.h"
#include "net/replica.h"
#include "net/sparql_endpoint.h"
#include "rpc/http_server.h"
#include "rpc/http_sparql_endpoint.h"
#include "shard/shard_map.h"
#include "shard/sharded_endpoint.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

// ---------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------

/// 20 subjects, two triples each: <sN> <p> N and <sN> <q> <cat(N%3)>.
std::vector<rdf::TermTriple> TestTriples() {
  std::vector<rdf::TermTriple> triples;
  for (int i = 0; i < 20; ++i) {
    rdf::Term subject = rdf::Term::Iri("http://ex/s" + std::to_string(i));
    triples.push_back(rdf::TermTriple{subject, rdf::Term::Iri("http://ex/p"),
                                      rdf::Term::Integer(i)});
    triples.push_back(rdf::TermTriple{
        subject, rdf::Term::Iri("http://ex/q"),
        rdf::Term::Iri("http://ex/cat" + std::to_string(i % 3))});
  }
  return triples;
}

std::unique_ptr<store::TripleStore> StoreOf(
    const std::vector<rdf::TermTriple>& triples) {
  auto store = std::make_unique<store::TripleStore>();
  for (const auto& triple : triples) store->Add(triple);
  store->Freeze();
  return store;
}

/// Splits `triples` into `map.NumShards()` in-process SparqlEndpoints by
/// subject ownership — the loader side of the shard contract.
std::vector<std::shared_ptr<net::Endpoint>> ShardMembers(
    const std::vector<rdf::TermTriple>& triples, const shard::ShardMap& map,
    const std::string& logical_id) {
  std::vector<std::vector<rdf::TermTriple>> slices(map.NumShards());
  for (const auto& triple : triples) {
    slices[map.ShardOfSubject(triple.subject)].push_back(triple);
  }
  std::vector<std::shared_ptr<net::Endpoint>> members;
  for (size_t i = 0; i < slices.size(); ++i) {
    members.push_back(std::make_shared<net::SparqlEndpoint>(
        logical_id + "#" + std::to_string(i), StoreOf(slices[i]),
        net::LatencyModel::None()));
  }
  return members;
}

/// The response rows regardless of representation (id-space or table).
sparql::ResultTable ResponseTable(const net::QueryResponse& response) {
  if (response.ids != nullptr) {
    return core::DecodeIdTable(*response.ids, *response.ids_dict);
  }
  return response.table;
}

/// Order-independent row fingerprints for result comparison.
std::vector<std::string> CanonicalRows(const sparql::ResultTable& table) {
  std::vector<std::string> rows;
  for (const auto& row : table.rows) {
    std::string s;
    for (const auto& cell : row) {
      s += cell.has_value() ? cell->ToString() : "UNDEF";
      s += "\x1f";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ---------------------------------------------------------------------
// ShardMap: determinism, parsing, loader/router agreement
// ---------------------------------------------------------------------

TEST(ShardMapTest, SameHostListInAnyOrderYieldsIdenticalAssignment) {
  auto a = shard::ParseShardsArg("h1:9001,h2:9002,h3:9003,h4:9004=lubm");
  auto b = shard::ParseShardsArg("h4:9004,h2:9002,h1:9001,h3:9003=lubm");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->members.size(), 4u);
  ASSERT_EQ(b->members.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a->members[i].addresses, b->members[i].addresses);
    EXPECT_EQ(a->members[i].id, b->members[i].id);
  }
  shard::ShardMap map_a = a->Map();
  shard::ShardMap map_b = b->Map();
  for (int i = 0; i < 200; ++i) {
    rdf::Term subject = rdf::Term::Iri("http://ex/s" + std::to_string(i));
    EXPECT_EQ(map_a.ShardOfSubject(subject), map_b.ShardOfSubject(subject));
  }
}

TEST(ShardMapTest, AssignmentMatchesIndexOnlyHashRing) {
  // The ring is keyed by shard index alone, so a parsed 4-member spec and
  // a bare HashRing(4) — the loader's map — agree on every subject.
  auto spec = shard::ParseShardsArg("h1:9001,h2:9002,h3:9003,h4:9004=lubm");
  ASSERT_TRUE(spec.ok());
  shard::ShardMap parsed = spec->Map();
  shard::ShardMap loader = shard::ShardMap::HashRing(4);
  for (int i = 0; i < 200; ++i) {
    rdf::Term subject = rdf::Term::Iri("http://ex/u" + std::to_string(i));
    EXPECT_EQ(parsed.ShardOfSubject(subject), loader.ShardOfSubject(subject));
  }
}

TEST(ShardMapTest, HashRingSpreadsSubjectsAcrossAllShards) {
  shard::ShardMap map = shard::ShardMap::HashRing(4);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    size_t shard = map.ShardOfSubject(
        rdf::Term::Iri("http://ex/s" + std::to_string(i)));
    ASSERT_LT(shard, 4u);
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardMapTest, MalformedSpecsNameTheOffendingToken) {
  struct Case {
    const char* arg;
    const char* offender;  ///< Must appear in the error message.
  };
  const Case cases[] = {
      {"h1:9001,h2:9002", "h1:9001,h2:9002"},       // Missing =id.
      {"h1:9001,,h2:9002=x", ""},                   // Empty member.
      {"h1:9001,bogus=x", "bogus"},                 // No host:port shape.
      {"h1:9001,h2:=x", "h2:"},                     // Empty port.
      {"h1:9001,h1:9001=x", "h1:9001"},             // Duplicate address.
      {"h1:9001^u0,h2:9002=x", "h2:9002"},          // Mixed token-ness.
      {"h1:9001^=x", "h1:9001^"},                   // Empty token.
      {"=x", "=x"},                                 // No members.
      {"h1:9001=", "h1:9001="},                     // Empty logical id.
  };
  for (const Case& c : cases) {
    auto spec = shard::ParseShardsArg(c.arg);
    ASSERT_FALSE(spec.ok()) << "accepted: " << c.arg;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << c.arg;
    if (c.offender[0] != '\0') {
      EXPECT_NE(spec.status().message().find(c.offender), std::string::npos)
          << c.arg << " -> " << spec.status().ToString();
    }
  }
}

TEST(ShardMapTest, ReplicaAddressesAndTokenModeParse) {
  auto spec = shard::ParseShardsArg(
      "h1:9001|h1:9002^.University0.,h2:9001^.University1.=lubm");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->members.size(), 2u);
  EXPECT_EQ(spec->logical_id, "lubm");
  // Members sort by primary address: h1:9001|h1:9002 before h2:9001.
  EXPECT_EQ(spec->members[0].addresses,
            (std::vector<std::string>{"h1:9001", "h1:9002"}));
  EXPECT_EQ(spec->members[0].token, ".University0.");
  EXPECT_EQ(spec->members[1].token, ".University1.");

  shard::ShardMap map = spec->Map();
  EXPECT_EQ(map.mode(), shard::ShardMode::kTokens);
  EXPECT_EQ(map.ShardOfSubject(rdf::Term::Iri(
                "http://www.Department3.University0.edu/Student42")),
            0u);
  EXPECT_EQ(map.ShardOfSubject(rdf::Term::Iri(
                "http://www.Department1.University1.edu/Professor7")),
            1u);
  // Strays fall back to the ring deterministically.
  rdf::Term stray = rdf::Term::Iri("http://ex/other");
  EXPECT_EQ(map.ShardOfSubject(stray), map.ShardOfSubject(stray));
  EXPECT_LT(map.ShardOfSubject(stray), 2u);
}

TEST(ShardMapTest, SplitNTriplesAgreesWithSubjectRouting) {
  std::string text = "# comment line\n\n";
  for (int i = 0; i < 50; ++i) {
    text += "<http://ex/s" + std::to_string(i) +
            "> <http://ex/p> <http://ex/o" + std::to_string(i) + "> .\n";
  }
  shard::ShardMap map = shard::ShardMap::HashRing(4);
  auto chunks = shard::SplitNTriples(text, map);
  ASSERT_TRUE(chunks.ok()) << chunks.status().ToString();
  ASSERT_EQ(chunks->size(), 4u);

  size_t total = 0;
  for (size_t shard = 0; shard < chunks->size(); ++shard) {
    std::istringstream lines((*chunks)[shard]);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      ++total;
      std::string subject = line.substr(0, line.find("> ") + 1);
      EXPECT_EQ(map.ShardOfSubjectText(subject), shard) << line;
      rdf::TermTriple triple;
      bool has_triple = false;
      ASSERT_TRUE(rdf::ParseNTriplesLine(line, &triple, &has_triple).ok());
      ASSERT_TRUE(has_triple);
      EXPECT_EQ(map.ShardOfSubject(triple.subject), shard) << line;
    }
  }
  EXPECT_EQ(total, 50u);  // Comments/blank lines dropped, no triple lost.
}

TEST(ShardMapTest, SplitNTriplesRejectsMalformedLines) {
  shard::ShardMap map = shard::ShardMap::HashRing(2);
  auto chunks = shard::SplitNTriples("this is not an n-triples line\n", map);
  ASSERT_FALSE(chunks.ok());
}

// ---------------------------------------------------------------------
// ShardedEndpoint: scatter-gather row identity against the oracle
// ---------------------------------------------------------------------

/// 4-shard in-process endpoint plus the unsharded oracle over identical
/// data; every SELECT must be row-identical between the two.
class ShardedEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    triples_ = TestTriples();
    oracle_ = std::make_shared<net::SparqlEndpoint>(
        "oracle", StoreOf(triples_), net::LatencyModel::None());
    map_ = shard::ShardMap::HashRing(4);
    Rebuild(shard::ShardedEndpointOptions{});
  }

  void Rebuild(shard::ShardedEndpointOptions options) {
    sharded_ = std::make_unique<shard::ShardedEndpoint>(
        "ex", map_, ShardMembers(triples_, map_, "ex"), options);
  }

  /// Runs `text` on both and expects identical canonical rows.
  void ExpectRowIdentical(const std::string& text) {
    auto expected = oracle_->Query(text);
    auto actual = sharded_->Query(text);
    ASSERT_TRUE(expected.ok()) << text << ": " << expected.status().ToString();
    ASSERT_TRUE(actual.ok()) << text << ": " << actual.status().ToString();
    EXPECT_EQ(CanonicalRows(ResponseTable(*actual)),
              CanonicalRows(ResponseTable(*expected)))
        << text;
  }

  std::vector<rdf::TermTriple> triples_;
  std::shared_ptr<net::SparqlEndpoint> oracle_;
  shard::ShardMap map_ = shard::ShardMap::HashRing(4);
  std::unique_ptr<shard::ShardedEndpoint> sharded_;
};

TEST_F(ShardedEndpointTest, SingleStarScanIsRowIdentical) {
  ExpectRowIdentical("SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }");
}

TEST_F(ShardedEndpointTest, SubjectStarJoinIsRowIdentical) {
  ExpectRowIdentical(
      "SELECT ?s ?o ?c WHERE { ?s <http://ex/p> ?o . "
      "?s <http://ex/q> ?c . }");
}

TEST_F(ShardedEndpointTest, FilterIsRowIdentical) {
  ExpectRowIdentical(
      "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . FILTER(?o > 12) }");
}

TEST_F(ShardedEndpointTest, DistinctProjectionIsRowIdentical) {
  ExpectRowIdentical("SELECT DISTINCT ?c WHERE { ?s <http://ex/q> ?c . }");
}

TEST_F(ShardedEndpointTest, OptionalIsRowIdentical) {
  ExpectRowIdentical(
      "SELECT ?s ?o ?c WHERE { ?s <http://ex/p> ?o . "
      "OPTIONAL { ?s <http://ex/q> ?c . } }");
}

TEST_F(ShardedEndpointTest, UnionIsRowIdentical) {
  ExpectRowIdentical(
      "SELECT ?s WHERE { { ?s <http://ex/q> <http://ex/cat0> . } UNION "
      "{ ?s <http://ex/q> <http://ex/cat1> . } }");
}

TEST_F(ShardedEndpointTest, ValuesIsRowIdentical) {
  ExpectRowIdentical(
      "SELECT ?s ?o WHERE { VALUES ?s { <http://ex/s1> <http://ex/s7> "
      "<http://ex/s13> } ?s <http://ex/p> ?o . }");
}

TEST_F(ShardedEndpointTest, OrderByLimitIsRowIdentical) {
  const char kText[] =
      "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . } ORDER BY ?o LIMIT 5";
  auto expected = oracle_->Query(kText);
  auto actual = sharded_->Query(kText);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  sparql::ResultTable expected_table = ResponseTable(*expected);
  sparql::ResultTable actual_table = ResponseTable(*actual);
  ASSERT_EQ(actual_table.rows.size(), 5u);
  // ORDER BY makes the row order part of the contract: compare in order.
  EXPECT_EQ(CanonicalRows(actual_table), CanonicalRows(expected_table));
  for (size_t r = 0; r < actual_table.rows.size(); ++r) {
    ASSERT_TRUE(actual_table.rows[r][1].has_value());
    ASSERT_TRUE(expected_table.rows[r][1].has_value());
    EXPECT_EQ(actual_table.rows[r][1]->ToString(),
              expected_table.rows[r][1]->ToString());
  }
}

TEST_F(ShardedEndpointTest, OrderByLimitOffsetWindowMatchesOracle) {
  // The gather's bounded top-k must produce the same window as the
  // oracle's full sort — ascending, descending, and with OFFSET shifting
  // the window past the heap's worst rows.
  const char* windows[] = {
      "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . } "
      "ORDER BY ?o LIMIT 5 OFFSET 3",
      "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . } "
      "ORDER BY DESC(?o) LIMIT 4",
      "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . } "
      "ORDER BY DESC(?o) LIMIT 6 OFFSET 16",  // Window past the tail.
      "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . } ORDER BY ?o OFFSET 18",
  };
  for (const char* text : windows) {
    auto expected = oracle_->Query(text);
    auto actual = sharded_->Query(text);
    ASSERT_TRUE(expected.ok()) << text << ": " << expected.status().ToString();
    ASSERT_TRUE(actual.ok()) << text << ": " << actual.status().ToString();
    sparql::ResultTable expected_table = ResponseTable(*expected);
    sparql::ResultTable actual_table = ResponseTable(*actual);
    ASSERT_EQ(actual_table.rows.size(), expected_table.rows.size()) << text;
    // ?o is unique per row, so the ordered comparison is deterministic.
    for (size_t r = 0; r < actual_table.rows.size(); ++r) {
      ASSERT_TRUE(actual_table.rows[r][1].has_value()) << text;
      EXPECT_EQ(actual_table.rows[r][1]->ToString(),
                expected_table.rows[r][1]->ToString())
          << text << " row " << r;
    }
  }
}

TEST_F(ShardedEndpointTest, OrderByKeyOutsideProjectionStillSorts) {
  // The sort key is not in the SELECT list: members must ship it anyway
  // (the scatter extends their projection) and the gather must drop the
  // extra column after windowing.
  const char kText[] =
      "SELECT ?s WHERE { ?s <http://ex/p> ?o . } ORDER BY DESC(?o) LIMIT 5";
  auto expected = oracle_->Query(kText);
  auto actual = sharded_->Query(kText);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  sparql::ResultTable expected_table = ResponseTable(*expected);
  sparql::ResultTable actual_table = ResponseTable(*actual);
  ASSERT_EQ(actual_table.vars, (std::vector<std::string>{"s"}));
  ASSERT_EQ(actual_table.rows.size(), 5u);
  // ?o = N for subject sN, so DESC(?o) LIMIT 5 is s19..s15 exactly.
  for (size_t r = 0; r < 5; ++r) {
    ASSERT_TRUE(actual_table.rows[r][0].has_value());
    EXPECT_EQ(actual_table.rows[r][0]->ToString(),
              expected_table.rows[r][0]->ToString())
        << "row " << r;
  }
}

/// Member decorator recording every shipped query text.
class RecordingMember : public net::Endpoint {
 public:
  explicit RecordingMember(std::shared_ptr<net::Endpoint> inner)
      : inner_(std::move(inner)) {}
  const std::string& id() const override { return inner_->id(); }
  Result<net::QueryResponse> Query(const std::string& text) override {
    Record(text);
    return inner_->Query(text);
  }
  Result<net::QueryResponse> QueryWithDeadline(
      const std::string& text, const Deadline& deadline) override {
    Record(text);
    return inner_->QueryWithDeadline(text, deadline);
  }
  Result<net::QueryResponse> QueryCancellable(
      const std::string& text, const CancelToken& cancel) override {
    Record(text);
    return inner_->QueryCancellable(text, cancel);
  }
  std::vector<std::string> recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return texts_;
  }

 private:
  void Record(const std::string& text) {
    std::lock_guard<std::mutex> lock(mu_);
    texts_.push_back(text);
  }
  std::shared_ptr<net::Endpoint> inner_;
  mutable std::mutex mu_;
  std::vector<std::string> texts_;
};

TEST_F(ShardedEndpointTest, OffsetIsNeverPushedToMembers) {
  // OFFSET pushed to a member would skip that member's first rows and
  // lose them from the union for good; LIMIT may ship only widened to
  // offset+limit, and only when no global sort reorders the union.
  std::vector<std::shared_ptr<RecordingMember>> recorders;
  std::vector<std::shared_ptr<net::Endpoint>> members;
  for (auto& member : ShardMembers(triples_, map_, "ex")) {
    auto recorder = std::make_shared<RecordingMember>(member);
    recorders.push_back(recorder);
    members.push_back(recorder);
  }
  shard::ShardedEndpoint sharded("ex", map_, members,
                                 shard::ShardedEndpointOptions{});

  auto windowed = sharded.Query(
      "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . } LIMIT 5 OFFSET 3");
  ASSERT_TRUE(windowed.ok()) << windowed.status().ToString();
  EXPECT_EQ(ResponseTable(*windowed).rows.size(), 5u);
  std::vector<size_t> seen;
  bool saw_widened_limit = false;
  for (const auto& recorder : recorders) {
    std::vector<std::string> texts = recorder->recorded();
    seen.push_back(texts.size());
    for (const std::string& text : texts) {
      EXPECT_EQ(text.find("OFFSET"), std::string::npos)
          << "OFFSET shipped to a member: " << text;
      // The unsorted window ships LIMIT offset+limit = 8 to members.
      if (text.find("LIMIT 8") != std::string::npos) {
        saw_widened_limit = true;
      }
    }
  }
  EXPECT_TRUE(saw_widened_limit);

  auto sorted = sharded.Query(
      "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . } "
      "ORDER BY ?o LIMIT 5 OFFSET 3");
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_EQ(ResponseTable(*sorted).rows.size(), 5u);
  for (size_t i = 0; i < recorders.size(); ++i) {
    std::vector<std::string> texts = recorders[i]->recorded();
    for (size_t t = seen[i]; t < texts.size(); ++t) {
      // Under a global sort the gather needs every member row that could
      // fall in the window, so neither OFFSET nor LIMIT may ship.
      EXPECT_EQ(texts[t].find("OFFSET"), std::string::npos) << texts[t];
      EXPECT_EQ(texts[t].find("LIMIT"), std::string::npos) << texts[t];
    }
  }
}

TEST_F(ShardedEndpointTest, CountAggregateSumsAcrossShards) {
  const char kText[] = "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://ex/p> ?o . }";
  auto expected = oracle_->Query(kText);
  auto actual = sharded_->Query(kText);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(CanonicalRows(ResponseTable(*actual)),
            CanonicalRows(ResponseTable(*expected)));
  sparql::ResultTable table = ResponseTable(*actual);
  ASSERT_EQ(table.rows.size(), 1u);
  ASSERT_TRUE(table.rows[0][0].has_value());
  EXPECT_EQ(table.rows[0][0]->lexical(), "20");
}

TEST_F(ShardedEndpointTest, SubjectConstantRoutesToExactlyOneShard) {
  uint64_t fanout_before = sharded_->stats().fanout_requests;
  ExpectRowIdentical("SELECT ?o WHERE { <http://ex/s3> <http://ex/p> ?o . }");
  shard::ShardedEndpointStats stats = sharded_->stats();
  EXPECT_EQ(stats.fanout_requests - fanout_before, 1u);
  EXPECT_EQ(stats.single_shard_queries, 1u);
  EXPECT_GE(stats.pruned_shards, 3u);
}

TEST_F(ShardedEndpointTest, AskTrueAndFalseMatchOracle) {
  for (const char* text :
       {"ASK { <http://ex/s3> <http://ex/p> ?o . }",
        "ASK { <http://ex/s3> <http://ex/missing> ?o . }",
        "ASK { ?s <http://ex/q> <http://ex/cat2> . }"}) {
    auto expected = oracle_->Query(text);
    auto actual = sharded_->Query(text);
    ASSERT_TRUE(expected.ok()) << text << ": " << expected.status().ToString();
    ASSERT_TRUE(actual.ok()) << text << ": " << actual.status().ToString();
    EXPECT_EQ(actual->RowCount() > 0, expected->RowCount() > 0) << text;
  }
}

TEST_F(ShardedEndpointTest, AskShortCircuitsOnCachedVerdicts) {
  cache::FederationCache cache;
  shard::ShardedEndpointOptions options;
  options.cache = &cache;
  Rebuild(options);

  const char kAsk[] = "ASK { ?s <http://ex/p> ?o . }";
  auto first = sharded_->Query(kAsk);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first->RowCount(), 0u);
  uint64_t fanout_after_first = sharded_->stats().fanout_requests;
  EXPECT_GT(fanout_after_first, 0u);

  // The scattered verdicts were stored per member; the identical ASK is
  // now answerable with zero member requests.
  auto second = sharded_->Query(kAsk);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(second->RowCount(), 0u);
  EXPECT_EQ(sharded_->stats().fanout_requests, fanout_after_first);
  EXPECT_GE(sharded_->stats().ask_short_circuits, 1u);
}

TEST_F(ShardedEndpointTest, CachedFalseVerdictsPruneSelectScatter) {
  cache::FederationCache cache;
  // Seed a false verdict for the probe pattern on every member but #0:
  // the scatter must skip them.
  shard::ShardedEndpointOptions options;
  options.cache = &cache;
  Rebuild(options);
  const char kAskText[] = "ASK { ?s <http://ex/p> ?o . }";
  for (size_t i = 1; i < sharded_->NumShards(); ++i) {
    cache.PutVerdict(
        cache::FederationCache::Key(sharded_->member_id(i), kAskText),
        sharded_->member_id(i), false);
  }
  uint64_t pruned_before = sharded_->stats().pruned_shards;
  auto response =
      sharded_->Query("SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(sharded_->stats().fanout_requests, 1u);
  EXPECT_GE(sharded_->stats().pruned_shards - pruned_before, 3u);
}

TEST_F(ShardedEndpointTest, CountProbesReuseTheCountTier) {
  cache::FederationCache cache;
  shard::ShardedEndpointOptions options;
  options.cache = &cache;
  Rebuild(options);

  const char kCount[] =
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://ex/p> ?o . }";
  auto first = sharded_->Query(kCount);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  uint64_t fanout_after_first = sharded_->stats().fanout_requests;

  auto second = sharded_->Query(kCount);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(sharded_->stats().fanout_requests, fanout_after_first)
      << "second COUNT must be served from the count tier";
  EXPECT_EQ(CanonicalRows(ResponseTable(*second)),
            CanonicalRows(ResponseTable(*first)));
}

TEST_F(ShardedEndpointTest, InvalidatingTheLogicalEndpointReachesMembers) {
  cache::FederationCache cache;
  shard::ShardedEndpointOptions options;
  options.cache = &cache;
  Rebuild(options);  // Ctor registers member ids with the cache.

  const char kAsk[] = "ASK { ?s <http://ex/p> ?o . }";
  ASSERT_TRUE(sharded_->Query(kAsk).ok());
  uint64_t fanout_warm = sharded_->stats().fanout_requests;
  ASSERT_TRUE(sharded_->Query(kAsk).ok());
  ASSERT_EQ(sharded_->stats().fanout_requests, fanout_warm);  // Cached.

  // Invalidate by the *logical* id: member-keyed verdicts must die too,
  // so the next ASK scatters again instead of serving stale truth.
  cache.Invalidate("ex");
  ASSERT_TRUE(sharded_->Query(kAsk).ok());
  EXPECT_GT(sharded_->stats().fanout_requests, fanout_warm);
}

TEST_F(ShardedEndpointTest, HasAvailableShardTrueForPlainMembers) {
  EXPECT_TRUE(sharded_->HasAvailableShard());
  EXPECT_EQ(sharded_->NumShards(), 4u);
  EXPECT_EQ(sharded_->MemberIds().size(), 4u);
}

TEST_F(ShardedEndpointTest, DeadShardFailsTheQueryByDefault) {
  auto members = ShardMembers(triples_, map_, "ex");
  net::FaultProfile down;
  down.permanently_down = true;
  members[2] = std::make_shared<net::FaultInjectingEndpoint>(
      std::make_shared<net::SparqlEndpoint>("ex#2", StoreOf({}),
                                            net::LatencyModel::None()),
      down);
  shard::ShardedEndpoint sharded("ex", map_, members);
  auto response =
      sharded.Query("SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }");
  ASSERT_FALSE(response.ok());
  EXPECT_GE(sharded.stats().shard_failures, 1u);
}

TEST_F(ShardedEndpointTest, PartialResultsReturnsLowerBoundWithDegradedIds) {
  auto members = ShardMembers(triples_, map_, "ex");
  net::FaultProfile down;
  down.permanently_down = true;
  members[2] = std::make_shared<net::FaultInjectingEndpoint>(
      std::make_shared<net::SparqlEndpoint>("ex#2", StoreOf({}),
                                            net::LatencyModel::None()),
      down);
  shard::ShardedEndpointOptions options;
  options.partial_results = true;
  shard::ShardedEndpoint sharded("ex", map_, members, options);

  const char kText[] = "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }";
  auto full = oracle_->Query(kText);
  ASSERT_TRUE(full.ok());
  auto partial = sharded.Query(kText);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->degraded_members,
            std::vector<std::string>{sharded.member_id(2)});
  EXPECT_GE(sharded.stats().partial_queries, 1u);

  // Lower bound: every returned row exists in the full answer, and only
  // shard 2's rows are missing.
  std::vector<std::string> full_rows = CanonicalRows(ResponseTable(*full));
  std::vector<std::string> partial_rows =
      CanonicalRows(ResponseTable(*partial));
  EXPECT_LT(partial_rows.size(), full_rows.size());
  EXPECT_GT(partial_rows.size(), 0u);
  for (const std::string& row : partial_rows) {
    EXPECT_NE(std::find(full_rows.begin(), full_rows.end(), row),
              full_rows.end());
  }
}

TEST_F(ShardedEndpointTest, ConcurrentQueriesAreThreadSafe) {
  const char* queries[] = {
      "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }",
      "SELECT ?s ?o ?c WHERE { ?s <http://ex/p> ?o . "
      "?s <http://ex/q> ?c . }",
      "SELECT ?o WHERE { <http://ex/s3> <http://ex/p> ?o . }",
      "ASK { ?s <http://ex/q> <http://ex/cat1> . }",
  };
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 5; ++round) {
        auto response = sharded_->Query(queries[(t + round) % 4]);
        if (!response.ok()) ++failures;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------
// Engine integration: a federation whose only endpoint is sharded
// ---------------------------------------------------------------------

TEST(ShardedFederationTest, LubmEngineRowsMatchUnshardedFederation) {
  workload::LubmConfig config = workload::LubmConfig::Small();
  config.num_universities = 2;
  std::vector<workload::EndpointSpec> specs =
      workload::LubmGenerator(config).GenerateAll();

  // Oracle: the stock in-process federation.
  std::unique_ptr<fed::Federation> plain =
      workload::BuildFederation(specs, net::LatencyModel::None());
  core::LusailEngine plain_engine(plain.get());
  auto expected = plain_engine.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Sharded: each LUBM endpoint becomes a 4-shard ShardedEndpoint over
  // the identical triples, split by subject hash.
  fed::Federation sharded_fed;
  shard::ShardMap map = shard::ShardMap::HashRing(4);
  std::vector<std::shared_ptr<shard::ShardedEndpoint>> keep_alive;
  for (const auto& spec : specs) {
    auto endpoint = std::make_shared<shard::ShardedEndpoint>(
        spec.id, map, ShardMembers(spec.triples, map, spec.id));
    keep_alive.push_back(endpoint);
    sharded_fed.Add(endpoint);
  }
  core::LusailEngine sharded_engine(&sharded_fed);
  auto actual = sharded_engine.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_GT(actual->table.rows.size(), 0u);
  EXPECT_EQ(CanonicalRows(actual->table), CanonicalRows(expected->table));
}

// ---------------------------------------------------------------------
// 4-shard loopback end-to-end: real sockets, mid-query shard kill
// ---------------------------------------------------------------------

/// One logical endpoint split into 4 HttpServer shards on loopback
/// ports, plus the unsharded in-process oracle for row identity.
class ShardLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    triples_ = TestTriples();
    oracle_ = std::make_shared<net::SparqlEndpoint>(
        "oracle", StoreOf(triples_), net::LatencyModel::None());
    map_ = shard::ShardMap::HashRing(4);

    std::vector<std::vector<rdf::TermTriple>> slices(4);
    for (const auto& triple : triples_) {
      slices[map_.ShardOfSubject(triple.subject)].push_back(triple);
    }
    std::vector<std::shared_ptr<net::Endpoint>> members;
    for (size_t i = 0; i < slices.size(); ++i) {
      std::string member_id = "ex#" + std::to_string(i);
      auto endpoint = std::make_shared<net::SparqlEndpoint>(
          member_id, StoreOf(slices[i]), net::LatencyModel::None());
      auto server = std::make_unique<rpc::HttpServer>(endpoint);
      ASSERT_TRUE(server->Start().ok());
      members.push_back(std::make_shared<rpc::HttpSparqlEndpoint>(
          member_id, "127.0.0.1", server->port()));
      servers_.push_back(std::move(server));
    }
    shard::ShardedEndpointOptions options;
    options.partial_results = true;
    sharded_ = std::make_unique<shard::ShardedEndpoint>(
        "ex", map_, std::move(members), options);
  }
  void TearDown() override {
    for (auto& server : servers_) server->Stop();
  }

  std::vector<rdf::TermTriple> triples_;
  std::shared_ptr<net::SparqlEndpoint> oracle_;
  shard::ShardMap map_ = shard::ShardMap::HashRing(4);
  std::vector<std::unique_ptr<rpc::HttpServer>> servers_;
  std::unique_ptr<shard::ShardedEndpoint> sharded_;
};

TEST_F(ShardLoopbackTest, ShardedLoopbackIsRowIdentical) {
  for (const char* text :
       {"SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }",
        "SELECT ?s ?o ?c WHERE { ?s <http://ex/p> ?o . "
        "?s <http://ex/q> ?c . }",
        "SELECT ?o WHERE { <http://ex/s3> <http://ex/p> ?o . }"}) {
    auto expected = oracle_->Query(text);
    auto actual = sharded_->QueryWithDeadline(text,
                                              Deadline::AfterMillis(20000));
    ASSERT_TRUE(expected.ok()) << text << ": " << expected.status().ToString();
    ASSERT_TRUE(actual.ok()) << text << ": " << actual.status().ToString();
    EXPECT_EQ(CanonicalRows(ResponseTable(*actual)),
              CanonicalRows(ResponseTable(*expected)))
        << text;
    EXPECT_TRUE(actual->degraded_members.empty());
  }
}

TEST_F(ShardLoopbackTest, KilledShardDegradesToLowerBound) {
  const char kText[] = "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }";
  auto full = oracle_->Query(kText);
  ASSERT_TRUE(full.ok());

  servers_[1]->Stop();
  auto partial =
      sharded_->QueryWithDeadline(kText, Deadline::AfterMillis(20000));
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->degraded_members,
            std::vector<std::string>{sharded_->member_id(1)});

  std::vector<std::string> full_rows = CanonicalRows(ResponseTable(*full));
  std::vector<std::string> partial_rows =
      CanonicalRows(ResponseTable(*partial));
  EXPECT_LT(partial_rows.size(), full_rows.size());
  for (const std::string& row : partial_rows) {
    EXPECT_NE(std::find(full_rows.begin(), full_rows.end(), row),
              full_rows.end());
  }
}

TEST_F(ShardLoopbackTest, MidQueryShardKillStaysALowerBound) {
  const char kText[] =
      "SELECT ?s ?o ?c WHERE { ?s <http://ex/p> ?o . "
      "?s <http://ex/q> ?c . }";
  auto full = oracle_->Query(kText);
  ASSERT_TRUE(full.ok());
  std::vector<std::string> full_rows = CanonicalRows(ResponseTable(*full));

  // The kill can land before, during, or after the scatter touches shard
  // 2; in every case partial-results mode must return ok() with a subset
  // of the full answer.
  std::thread killer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    servers_[2]->Stop();
  });
  auto response =
      sharded_->QueryWithDeadline(kText, Deadline::AfterMillis(20000));
  killer.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  std::vector<std::string> rows = CanonicalRows(ResponseTable(*response));
  EXPECT_LE(rows.size(), full_rows.size());
  for (const std::string& row : rows) {
    EXPECT_NE(std::find(full_rows.begin(), full_rows.end(), row),
              full_rows.end());
  }
  if (!response->degraded_members.empty()) {
    EXPECT_EQ(response->degraded_members,
              std::vector<std::string>{sharded_->member_id(2)});
  }
}

}  // namespace
}  // namespace lusail
