// Tests for the federation-level cross-query cache, the concurrent
// QueryService (including queue-expiry fail-fast and Cancel), and
// regression fixes: the SAPE empty-partner short-circuit and per-chunk
// bound-join cancellation, exact COUNT-literal parsing, and the parallel
// cartesian join path.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cached_endpoint.h"
#include "cache/federation_cache.h"
#include "cache/query_service.h"
#include "core/cost_model.h"
#include "core/hash_join.h"
#include "core/lusail_engine.h"
#include "core/sape.h"
#include "net/sparql_endpoint.h"
#include "sparql/parser.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

// ---------------------------------------------------------------------
// LruTier / FederationCache
// ---------------------------------------------------------------------

TEST(LruTierTest, GetAfterPutAndMissCounters) {
  cache::LruTier<int> tier(/*max_entries=*/4, /*max_bytes=*/0);
  EXPECT_FALSE(tier.Get("a").has_value());
  tier.Put("a", "ep0", 1, sizeof(int));
  auto hit = tier.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1);
  cache::TierStats stats = tier.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(LruTierTest, EvictsLeastRecentlyUsedAtEntryCapacity) {
  cache::LruTier<int> tier(/*max_entries=*/2, /*max_bytes=*/0);
  tier.Put("a", "ep", 1, 0);
  tier.Put("b", "ep", 2, 0);
  // Touch "a" so "b" is the LRU victim.
  EXPECT_TRUE(tier.Get("a").has_value());
  tier.Put("c", "ep", 3, 0);
  EXPECT_TRUE(tier.Get("a").has_value());
  EXPECT_FALSE(tier.Get("b").has_value());
  EXPECT_TRUE(tier.Get("c").has_value());
  EXPECT_EQ(tier.Stats().evictions, 1u);
}

TEST(LruTierTest, EvictsAtByteBudget) {
  // Each entry charges value_bytes + key + endpoint id = 100 + 1 + 2.
  cache::LruTier<int> tier(/*max_entries=*/100, /*max_bytes=*/250);
  tier.Put("a", "ep", 1, 100);
  tier.Put("b", "ep", 2, 100);
  EXPECT_EQ(tier.Stats().entries, 2u);
  tier.Put("c", "ep", 3, 100);  // Pushes bytes past 250: "a" evicted.
  EXPECT_FALSE(tier.Get("a").has_value());
  EXPECT_TRUE(tier.Get("b").has_value());
  EXPECT_TRUE(tier.Get("c").has_value());
  EXPECT_LE(tier.Stats().bytes, 250u);
}

TEST(LruTierTest, UpdatingAKeyReplacesItsBytes) {
  cache::LruTier<int> tier(/*max_entries=*/10, /*max_bytes=*/0);
  tier.Put("a", "ep", 1, 100);
  uint64_t before = tier.Stats().bytes;
  tier.Put("a", "ep", 2, 50);
  EXPECT_EQ(tier.Stats().bytes, before - 50);
  EXPECT_EQ(tier.Stats().entries, 1u);
  EXPECT_EQ(*tier.Get("a"), 2);
}

TEST(LruTierTest, InvalidateEndpointDropsOnlyItsEntries) {
  cache::LruTier<int> tier(/*max_entries=*/10, /*max_bytes=*/0);
  tier.Put("a", "ep0", 1, 0);
  tier.Put("b", "ep1", 2, 0);
  tier.Put("c", "ep0", 3, 0);
  tier.InvalidateEndpoint("ep0");
  EXPECT_FALSE(tier.Get("a").has_value());
  EXPECT_TRUE(tier.Get("b").has_value());
  EXPECT_FALSE(tier.Get("c").has_value());
  EXPECT_EQ(tier.Stats().invalidations, 2u);
}

TEST(LruTierTest, InvalidationIsLazyButComplete) {
  cache::LruTier<int> tier(/*max_entries=*/10, /*max_bytes=*/0);
  tier.Put("a", "ep0", 1, 0);
  tier.Put("b", "ep0", 2, 0);
  tier.InvalidateEndpoint("ep0");
  // The bump is O(1): entries linger in the index until touched...
  EXPECT_EQ(tier.Stats().entries, 2u);
  EXPECT_EQ(tier.Stats().invalidations, 0u);
  // ...but any Get observes the invalidation and drops the entry.
  EXPECT_FALSE(tier.Get("a").has_value());
  EXPECT_EQ(tier.Stats().entries, 1u);
  EXPECT_EQ(tier.Stats().invalidations, 1u);
  // A fresh Put after the bump belongs to the new generation.
  tier.Put("a", "ep0", 3, 0);
  EXPECT_TRUE(tier.Get("a").has_value());
}

TEST(LruTierTest, EntriesExpireAfterMaxAge) {
  cache::LruTier<int> tier(/*max_entries=*/10, /*max_bytes=*/0,
                           /*max_age_ms=*/1000.0);
  tier.Put("a", "ep", 1, 0);
  EXPECT_TRUE(tier.Get("a").has_value());
  tier.AdvanceTimeForTesting(500.0);
  EXPECT_TRUE(tier.Get("a").has_value());  // Still fresh.
  tier.AdvanceTimeForTesting(600.0);       // 1100ms total: past the TTL.
  EXPECT_FALSE(tier.Get("a").has_value());
  EXPECT_EQ(tier.Stats().expired, 1u);
  EXPECT_EQ(tier.Stats().entries, 0u);
  // Re-inserting restarts the clock.
  tier.Put("a", "ep", 2, 0);
  EXPECT_TRUE(tier.Get("a").has_value());
}

TEST(FederationCacheTest, PerTierTtlExpiresIndependently) {
  cache::FederationCacheOptions options;
  options.verdict_max_age_ms = 10000.0;
  options.result_max_age_ms = 1000.0;  // Results age 10x faster.
  cache::FederationCache cache(options);
  std::string key = cache::FederationCache::Key("ep0", "q");
  cache.PutVerdict(key, "ep0", true);
  sparql::ResultTable table;
  table.vars = {"x"};
  cache.PutResult("ep0", "q", table);

  cache.AdvanceTimeForTesting(2000.0);
  EXPECT_TRUE(cache.GetVerdict(key).has_value());
  EXPECT_FALSE(cache.GetResult("ep0", "q").has_value());
  EXPECT_EQ(cache.ResultStats().expired, 1u);
  EXPECT_EQ(cache.VerdictStats().expired, 0u);

  obs::JsonValue json = cache.ToJson();
  EXPECT_EQ(json.Get("results").Get("expired").AsUint(), 1u);
}

TEST(FederationCacheTest, ThreeTiersAreIndependent) {
  cache::FederationCache cache;
  std::string key = cache::FederationCache::Key("ep0", "ASK { ?s ?p ?o }");
  cache.PutVerdict(key, "ep0", true);
  cache.PutCount(key, "ep0", 42);
  sparql::ResultTable table;
  table.vars = {"x"};
  table.rows.push_back({rdf::Term::Iri("urn:a")});
  cache.PutResult("ep0", "SELECT ...", table);

  EXPECT_EQ(cache.GetVerdict(key), std::optional<bool>(true));
  EXPECT_EQ(cache.GetCount(key), std::optional<uint64_t>(42));
  auto result = cache.GetResult("ep0", "SELECT ...");
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0]->lexical(), "urn:a");
}

TEST(FederationCacheTest, InvalidateEvictsEveryTier) {
  cache::FederationCache cache;
  std::string k0 = cache::FederationCache::Key("ep0", "q");
  std::string k1 = cache::FederationCache::Key("ep1", "q");
  cache.PutVerdict(k0, "ep0", true);
  cache.PutVerdict(k1, "ep1", false);
  cache.PutCount(k0, "ep0", 7);
  sparql::ResultTable table;
  table.vars = {"x"};
  cache.PutResult("ep0", "q", table);

  cache.Invalidate("ep0");
  EXPECT_FALSE(cache.GetVerdict(k0).has_value());
  EXPECT_TRUE(cache.GetVerdict(k1).has_value());
  EXPECT_FALSE(cache.GetCount(k0).has_value());
  EXPECT_FALSE(cache.GetResult("ep0", "q").has_value());
}

TEST(FederationCacheTest, ResultTierHonorsByteBudget) {
  cache::FederationCacheOptions options;
  options.result_byte_budget = 4096;
  cache::FederationCache cache(options);
  sparql::ResultTable table;
  table.vars = {"x"};
  for (int i = 0; i < 20; ++i) {
    table.rows.push_back(
        {rdf::Term::Iri("urn:value-" + std::to_string(i))});
  }
  ASSERT_GT(cache::FederationCache::ApproxTableBytes(table), 1000u);
  for (int i = 0; i < 16; ++i) {
    cache.PutResult("ep0", "query " + std::to_string(i), table);
  }
  cache::TierStats stats = cache.ResultStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 4096u);
}

TEST(FederationCacheTest, JsonExportCarriesAllTiers) {
  cache::FederationCache cache;
  cache.PutVerdict("k", "ep", true);
  obs::JsonValue json = cache.ToJson();
  EXPECT_TRUE(json.Has("verdicts"));
  EXPECT_TRUE(json.Has("counts"));
  EXPECT_TRUE(json.Has("results"));
  EXPECT_EQ(json.Get("verdicts").Get("insertions").AsDouble(), 1.0);
}

// ---------------------------------------------------------------------
// Engine-level caching: identical results, fewer requests
// ---------------------------------------------------------------------

uint64_t TotalRequests(const fed::Federation& federation) {
  uint64_t total = 0;
  for (size_t i = 0; i < federation.size(); ++i) {
    auto* ep = dynamic_cast<net::SparqlEndpoint*>(federation.endpoint(i));
    if (ep != nullptr) total += ep->stats().requests;
  }
  return total;
}

void ResetRequests(const fed::Federation& federation) {
  for (size_t i = 0; i < federation.size(); ++i) {
    auto* ep = dynamic_cast<net::SparqlEndpoint*>(federation.endpoint(i));
    if (ep != nullptr) ep->ResetStats();
  }
}

std::multiset<std::string> RowSet(const sparql::ResultTable& table) {
  std::vector<size_t> cols(table.vars.size());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  std::sort(cols.begin(), cols.end(), [&table](size_t a, size_t b) {
    return table.vars[a] < table.vars[b];
  });
  std::multiset<std::string> out;
  for (const auto& row : table.rows) {
    std::string key;
    for (size_t c : cols) {
      key += table.vars[c] + "=";
      key += row[c].has_value() ? row[c]->ToString() : "UNBOUND";
      key += ";";
    }
    out.insert(std::move(key));
  }
  return out;
}

class SharedCacheLubmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::LubmGenerator generator(workload::LubmConfig::Small());
    federation_ = workload::BuildFederation(generator.GenerateAll(),
                                            net::LatencyModel::None());
    queries_ = workload::LubmGenerator::BenchmarkQueries();
  }

  std::unique_ptr<fed::Federation> federation_;
  std::vector<std::pair<std::string, std::string>> queries_;
};

TEST_F(SharedCacheLubmTest, CachedResultsAreBitIdenticalAndCheaper) {
  // Reference: no shared cache at all.
  std::map<std::string, std::multiset<std::string>> reference;
  {
    core::LusailEngine engine(federation_.get());
    for (const auto& [label, query] : queries_) {
      auto result = engine.Execute(query, Deadline());
      ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
      reference[label] = RowSet(result->table);
    }
  }

  cache::FederationCache cache;
  federation_->set_query_cache(&cache);
  core::LusailOptions options;
  options.result_cache = true;

  ResetRequests(*federation_);
  {
    core::LusailEngine cold(federation_.get(), options);
    for (const auto& [label, query] : queries_) {
      auto result = cold.Execute(query, Deadline());
      ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
      EXPECT_EQ(RowSet(result->table), reference[label]) << label;
    }
  }
  uint64_t cold_requests = TotalRequests(*federation_);

  ResetRequests(*federation_);
  {
    // A fresh engine has empty per-engine caches; only the shared cache
    // carries over.
    core::LusailEngine warm(federation_.get(), options);
    for (const auto& [label, query] : queries_) {
      auto result = warm.Execute(query, Deadline());
      ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
      EXPECT_EQ(RowSet(result->table), reference[label]) << label;
    }
  }
  uint64_t warm_requests = TotalRequests(*federation_);

  // Acceptance: the warm pass issues >= 5x fewer endpoint requests.
  EXPECT_LT(warm_requests * 5, cold_requests)
      << "cold=" << cold_requests << " warm=" << warm_requests;
  EXPECT_GT(cache.VerdictStats().hits, 0u);
  EXPECT_GT(cache.CountStats().hits, 0u);
  EXPECT_GT(cache.ResultStats().hits, 0u);
  federation_->set_query_cache(nullptr);
}

TEST_F(SharedCacheLubmTest, FullyWarmRunIssuesNoRequests) {
  // Every fetch class is cacheable — ASK verdicts, COUNT probes, unbound
  // subquery results, and (since the binding-block fingerprint keys)
  // bound VALUES joins — so an identical re-run against a warm cache
  // must answer entirely from memory.
  cache::FederationCache cache;
  federation_->set_query_cache(&cache);
  core::LusailOptions options;
  options.result_cache = true;
  std::map<std::string, std::multiset<std::string>> reference;
  {
    core::LusailEngine cold(federation_.get(), options);
    for (const auto& [label, query] : queries_) {
      auto result = cold.Execute(query, Deadline());
      ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
      reference[label] = RowSet(result->table);
    }
  }
  ResetRequests(*federation_);
  {
    core::LusailEngine warm(federation_.get(), options);
    for (const auto& [label, query] : queries_) {
      auto result = warm.Execute(query, Deadline());
      ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
      EXPECT_EQ(RowSet(result->table), reference[label]) << label;
    }
  }
  EXPECT_EQ(TotalRequests(*federation_), 0u);
  federation_->set_query_cache(nullptr);
}

TEST_F(SharedCacheLubmTest, InvalidateForcesRefetch) {
  cache::FederationCache cache;
  federation_->set_query_cache(&cache);
  core::LusailOptions options;
  options.result_cache = true;
  const std::string& query = queries_[0].second;
  {
    core::LusailEngine engine(federation_.get(), options);
    ASSERT_TRUE(engine.Execute(query, Deadline()).ok());
  }
  ASSERT_GT(cache.VerdictStats().entries, 0u);

  for (size_t i = 0; i < federation_->size(); ++i) {
    cache.Invalidate(federation_->id(i));
  }
  // Invalidation is lazy (generation bump): entries linger until a Get
  // touches them, but every Get must now miss.
  std::string probe = cache::FederationCache::Key(federation_->id(0),
                                                  "ASK { ?s ?p ?o }");
  EXPECT_FALSE(cache.GetVerdict(probe).has_value());

  // The next cold engine must go back to the network.
  ResetRequests(*federation_);
  {
    core::LusailEngine engine(federation_.get(), options);
    ASSERT_TRUE(engine.Execute(query, Deadline()).ok());
  }
  EXPECT_GT(TotalRequests(*federation_), 0u);
  federation_->set_query_cache(nullptr);
}

// ---------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------

TEST_F(SharedCacheLubmTest, ConcurrentQueriesMatchSequential) {
  std::map<std::string, std::multiset<std::string>> reference;
  {
    core::LusailEngine engine(federation_.get());
    for (const auto& [label, query] : queries_) {
      auto result = engine.Execute(query, Deadline());
      ASSERT_TRUE(result.ok()) << label;
      reference[label] = RowSet(result->table);
    }
  }

  cache::FederationCache cache;
  federation_->set_query_cache(&cache);
  cache::QueryServiceOptions options;
  options.max_concurrent = 8;
  options.engine.result_cache = true;
  cache::QueryService service(federation_.get(), options);

  // 8 concurrent queries: Q1-Q4, two rounds.
  std::vector<std::pair<std::string,
                        std::future<Result<fed::FederatedResult>>>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const auto& [label, query] : queries_) {
      auto submitted = service.Submit(query);
      ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
      futures.emplace_back(label, std::move(submitted).value());
    }
  }
  for (auto& [label, future] : futures) {
    Result<fed::FederatedResult> result = future.get();
    ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    EXPECT_EQ(RowSet(result->table), reference[label]) << label;
  }
  service.Drain();
  cache::QueryServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 8u);
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  // Every accepted query passed through the queue exactly once, so the
  // wait-time histogram saw all 8; nothing is queued or running now.
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.wait.count(), 8u);
  EXPECT_GE(stats.wait.P99(), stats.wait.P50());
  obs::JsonValue json = service.StatsJson();
  EXPECT_EQ(json.Get("queued").AsUint(), 0u);
  EXPECT_EQ(json.Get("wait").Get("count").AsUint(), 8u);
  EXPECT_TRUE(json.Get("wait").Has("p95_ms"));
  federation_->set_query_cache(nullptr);
}

TEST(QueryServiceTest, AdmissionCapRejectsExcessQueries) {
  // 50 ms of simulated latency per request keeps the first query in
  // flight long enough for the second Submit to hit the cap.
  workload::LubmGenerator generator(workload::LubmConfig::Small());
  net::LatencyModel slow{/*request_latency_ms=*/50.0,
                         /*bandwidth_bytes_per_ms=*/0.0,
                         /*sleep_scale=*/1.0};
  auto federation =
      workload::BuildFederation(generator.GenerateAll(), slow);
  cache::QueryServiceOptions options;
  options.max_concurrent = 1;
  options.max_pending = 1;
  cache::QueryService service(federation.get(), options);

  auto queries = workload::LubmGenerator::BenchmarkQueries();
  auto first = service.Submit(queries[0].second);
  ASSERT_TRUE(first.ok());
  auto second = service.Submit(queries[1].second);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(first->get().ok());
  service.Drain();
  cache::QueryServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
}

// ---------------------------------------------------------------------
// Regression: COUNT-literal parsing above 2^53
// ---------------------------------------------------------------------

/// Regression (queue-expiry fail-fast): a query whose deadline passes
/// while it waits behind other queries must fail with kTimeout at
/// dequeue — counted as expired_in_queue — instead of executing with a
/// budget it no longer has.
TEST(QueryServiceTest, QueueExpiryFailsFastWithTimeout) {
  workload::LubmGenerator generator(workload::LubmConfig::Small());
  net::LatencyModel slow{/*request_latency_ms=*/50.0,
                         /*bandwidth_bytes_per_ms=*/0.0,
                         /*sleep_scale=*/1.0};
  auto federation = workload::BuildFederation(generator.GenerateAll(), slow);
  cache::QueryServiceOptions options;
  options.max_concurrent = 1;  // The second query must wait in the queue.
  cache::QueryService service(federation.get(), options);

  auto queries = workload::LubmGenerator::BenchmarkQueries();
  auto first = service.Submit(queries[0].second);
  ASSERT_TRUE(first.ok());
  // 1 ms of budget against >= 50 ms of queue wait: expired at dequeue.
  auto second = service.Submit(queries[0].second, Deadline::AfterMillis(1.0));
  ASSERT_TRUE(second.ok());

  Result<fed::FederatedResult> expired = second->get();
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kTimeout)
      << expired.status().ToString();
  // The fail-fast path, not a mid-execution timeout.
  EXPECT_NE(expired.status().message().find("queue wait"), std::string::npos)
      << expired.status().ToString();

  EXPECT_TRUE(first->get().ok());
  service.Drain();
  cache::QueryServiceStats stats = service.Stats();
  EXPECT_EQ(stats.expired_in_queue, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(QueryServiceTest, CancelAbortsSubmittedQuery) {
  workload::LubmGenerator generator(workload::LubmConfig::Small());
  net::LatencyModel slow{/*request_latency_ms=*/50.0,
                         /*bandwidth_bytes_per_ms=*/0.0,
                         /*sleep_scale=*/1.0};
  auto federation = workload::BuildFederation(generator.GenerateAll(), slow);
  cache::QueryServiceOptions options;
  options.max_concurrent = 1;
  cache::QueryService service(federation.get(), options);

  auto queries = workload::LubmGenerator::BenchmarkQueries();
  auto submitted = service.SubmitCancellable(queries[0].second);
  ASSERT_TRUE(submitted.ok());
  EXPECT_TRUE(service.Cancel(submitted->id));

  // Whether the cancel lands while the query is still queued or already
  // running, the future resolves to kTimeout within one work chunk.
  Result<fed::FederatedResult> result = submitted->future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
      << result.status().ToString();

  service.Drain();
  cache::QueryServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.failed, 1u);
  // Finished and unknown ids no longer cancel.
  EXPECT_FALSE(service.Cancel(submitted->id));
  EXPECT_FALSE(service.Cancel(424242));
}

TEST(ParseCountLiteralTest, KeepsFullPrecisionAboveDoubleRange) {
  // 2^53 + 1 is the first integer a double cannot represent.
  EXPECT_EQ(core::ParseCountLiteral(rdf::Term::Literal("9007199254740993")),
            9007199254740993ull);
  EXPECT_EQ(core::ParseCountLiteral(
                rdf::Term::Literal("18446744073709551615")),
            18446744073709551615ull);
  EXPECT_EQ(core::ParseCountLiteral(
                rdf::Term::TypedLiteral(
                    "9007199254740993",
                    "http://www.w3.org/2001/XMLSchema#integer")),
            9007199254740993ull);
}

TEST(ParseCountLiteralTest, FallbacksAreExplicit) {
  EXPECT_EQ(core::ParseCountLiteral(rdf::Term::Literal("+42")), 42ull);
  // Scientific notation goes through the double path.
  EXPECT_EQ(core::ParseCountLiteral(rdf::Term::Literal("1e3")), 1000ull);
  EXPECT_EQ(core::ParseCountLiteral(rdf::Term::Literal("12.0")), 12ull);
  // Overflow saturates instead of wrapping.
  EXPECT_EQ(core::ParseCountLiteral(
                rdf::Term::Literal("99999999999999999999999999")),
            std::numeric_limits<uint64_t>::max());
  // Non-numeric and negative map to zero.
  EXPECT_EQ(core::ParseCountLiteral(rdf::Term::Literal("not-a-number")),
            0ull);
  EXPECT_EQ(core::ParseCountLiteral(rdf::Term::Literal("-5")), 0ull);
  EXPECT_EQ(core::ParseCountLiteral(rdf::Term::Literal("")), 0ull);
}

/// An endpoint whose every SELECT answers with one huge COUNT literal.
class HugeCountEndpoint : public net::Endpoint {
 public:
  explicit HugeCountEndpoint(std::string count)
      : id_("huge"), count_(std::move(count)) {}

  const std::string& id() const override { return id_; }

  Result<net::QueryResponse> Query(const std::string& text) override {
    net::QueryResponse response;
    if (fed::LooksLikeAskQuery(text)) {
      response.table.rows.push_back({});
      return response;
    }
    response.table.vars = {"c"};
    response.table.rows.push_back({rdf::Term::TypedLiteral(
        count_, "http://www.w3.org/2001/XMLSchema#integer")});
    return response;
  }

 private:
  std::string id_;
  std::string count_;
};

TEST(CostModelCountTest, HugeCountSurvivesCollection) {
  fed::Federation federation;
  federation.Add(std::make_shared<HugeCountEndpoint>("9007199254740993"));
  ThreadPool pool(2);
  core::CostModel model(&federation, &pool);
  auto query = sparql::ParseQuery("SELECT ?s WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(query.ok());
  fed::MetricsCollector metrics;
  Status status = model.CollectStatistics(query->where.triples, {{0}}, {},
                                          &metrics, Deadline());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(model.PatternCount(0, 0), 9007199254740993ull);
}

// ---------------------------------------------------------------------
// Regression: SAPE empty-partner short-circuit
// ---------------------------------------------------------------------

TEST(SapeEmptyPartnerTest, DelayedSubqueryWithEmptyPartnerIsNotFetched) {
  // EP0 holds nothing matching the first subquery's pattern (zero rows);
  // EP1 holds a large relation for the delayed second subquery. The fix
  // must short-circuit the delayed subquery without contacting EP1.
  std::vector<workload::EndpointSpec> specs(2);
  specs[0].id = "ep0";
  specs[0].triples.push_back({rdf::Term::Iri("urn:a"),
                              rdf::Term::Iri("urn:unrelated"),
                              rdf::Term::Iri("urn:b")});
  specs[1].id = "ep1";
  for (int i = 0; i < 100; ++i) {
    specs[1].triples.push_back(
        {rdf::Term::Iri("urn:x" + std::to_string(i)), rdf::Term::Iri("urn:q"),
         rdf::Term::Iri("urn:y" + std::to_string(i))});
  }
  auto federation =
      workload::BuildFederation(std::move(specs), net::LatencyModel::None());

  auto query = sparql::ParseQuery(
      "SELECT ?s ?x ?y WHERE { ?s <urn:p> ?x . ?x <urn:q> ?y . }");
  ASSERT_TRUE(query.ok());

  core::Subquery empty_sq;
  empty_sq.triple_indices = {0};
  empty_sq.sources = {0};
  empty_sq.projection = {"s", "x"};
  empty_sq.estimated_cardinality = 0.0;

  core::Subquery delayed_sq;
  delayed_sq.triple_indices = {1};
  delayed_sq.sources = {1};
  delayed_sq.projection = {"x", "y"};
  delayed_sq.estimated_cardinality = 1e6;  // Forces the delay decision.

  core::LusailOptions options;
  ThreadPool pool(4);
  core::SapeExecutor sape(federation.get(), &pool, &options);
  fed::SharedDictionary dict;
  auto result = sape.Execute({empty_sq, delayed_sq}, query->where.triples,
                             &dict, nullptr, CancelToken());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 0u);

  // EP1 (the delayed subquery's only source) was never contacted.
  auto* ep1 = dynamic_cast<net::SparqlEndpoint*>(federation->endpoint(1));
  ASSERT_NE(ep1, nullptr);
  EXPECT_EQ(ep1->stats().requests, 0u);
  // EP0 was queried for the concurrent-phase subquery.
  auto* ep0 = dynamic_cast<net::SparqlEndpoint*>(federation->endpoint(0));
  ASSERT_NE(ep0, nullptr);
  EXPECT_EQ(ep0->stats().requests, 1u);
}

// ---------------------------------------------------------------------
// Regression: bound join re-checks cancellation between VALUES chunks
// ---------------------------------------------------------------------

/// Decorator that fires `token` after serving each request — the
/// deterministic "client gives up right after the first bound-join
/// chunk" scenario.
class CancelAfterRequestEndpoint : public net::Endpoint {
 public:
  CancelAfterRequestEndpoint(std::shared_ptr<net::Endpoint> inner,
                             CancelToken token)
      : inner_(std::move(inner)), token_(std::move(token)) {}

  const std::string& id() const override { return inner_->id(); }

  Result<net::QueryResponse> Query(const std::string& text) override {
    Result<net::QueryResponse> response = inner_->Query(text);
    requests_.fetch_add(1, std::memory_order_relaxed);
    token_.Cancel();
    return response;
  }

  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<net::Endpoint> inner_;
  CancelToken token_;
  std::atomic<uint64_t> requests_{0};
};

/// Regression (per-chunk cancellation): a delayed subquery shipping its
/// bindings in N VALUES blocks must stop at the first block past the
/// cancel/deadline, not fire the remaining N-1 requests.
TEST(SapeBoundJoinCancelTest, CancelBetweenValuesChunksStopsFetching) {
  auto store0 = std::make_unique<store::TripleStore>();
  auto store1 = std::make_unique<store::TripleStore>();
  for (int i = 0; i < 8; ++i) {
    store0->Add({rdf::Term::Iri("urn:s" + std::to_string(i)),
                 rdf::Term::Iri("urn:p"),
                 rdf::Term::Iri("urn:x" + std::to_string(i))});
    store1->Add({rdf::Term::Iri("urn:x" + std::to_string(i)),
                 rdf::Term::Iri("urn:q"),
                 rdf::Term::Iri("urn:y" + std::to_string(i))});
  }
  store0->Freeze();
  store1->Freeze();

  CancelToken token = CancelToken::Cancellable();
  auto ep1 = std::make_shared<CancelAfterRequestEndpoint>(
      std::make_shared<net::SparqlEndpoint>("ep1", std::move(store1),
                                            net::LatencyModel::None()),
      token);
  fed::Federation federation;
  federation.Add(std::make_shared<net::SparqlEndpoint>(
      "ep0", std::move(store0), net::LatencyModel::None()));
  federation.Add(ep1);

  auto query = sparql::ParseQuery(
      "SELECT ?s ?x ?y WHERE { ?s <urn:p> ?x . ?x <urn:q> ?y . }");
  ASSERT_TRUE(query.ok());

  core::Subquery found_sq;
  found_sq.triple_indices = {0};
  found_sq.sources = {0};
  found_sq.projection = {"s", "x"};
  found_sq.estimated_cardinality = 8.0;

  core::Subquery delayed_sq;
  delayed_sq.triple_indices = {1};
  delayed_sq.sources = {1};
  delayed_sq.projection = {"x", "y"};
  delayed_sq.estimated_cardinality = 1e6;  // Forces the delay decision.

  core::LusailOptions options;
  options.bound_join_block_size = 1;  // 8 bindings -> 8 VALUES chunks.
  ThreadPool pool(4);
  core::SapeExecutor sape(&federation, &pool, &options);
  fed::SharedDictionary dict;
  auto result = sape.Execute({found_sq, delayed_sq}, query->where.triples,
                             &dict, nullptr, token);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("bound join"), std::string::npos)
      << result.status().ToString();
  // One chunk was in flight when the token fired; the remaining 7 must
  // not have been issued.
  EXPECT_EQ(ep1->requests(), 1u);
}

// ---------------------------------------------------------------------
// Regression: parallel cartesian join path
// ---------------------------------------------------------------------

TEST(ParallelCartesianTest, MatchesSingleThreadedProduct) {
  fed::SharedDictionary dict;
  fed::BindingTable left, right;
  left.vars = {"a"};
  right.vars = {"b"};
  for (int i = 0; i < 80; ++i) {
    left.AppendRow({dict.Intern(rdf::Term::Iri("urn:l" + std::to_string(i)))});
  }
  for (int i = 0; i < 60; ++i) {
    right.AppendRow({dict.Intern(rdf::Term::Iri("urn:r" + std::to_string(i)))});
  }
  ThreadPool pool(4);
  fed::BindingTable parallel = core::ParallelHashJoin(left, right, &pool, 4);
  fed::BindingTable serial = fed::HashJoin(left, right);
  ASSERT_EQ(parallel.NumRows(), 80u * 60u);
  ASSERT_EQ(serial.NumRows(), parallel.NumRows());

  auto fingerprint = [](const fed::BindingTable& t) {
    std::multiset<std::string> out;
    size_t a = static_cast<size_t>(t.VarIndex("a"));
    size_t b = static_cast<size_t>(t.VarIndex("b"));
    for (size_t r = 0; r < t.NumRows(); ++r) {
      out.insert(std::to_string(t.At(r, a)) + "|" + std::to_string(t.At(r, b)));
    }
    return out;
  };
  EXPECT_EQ(fingerprint(parallel), fingerprint(serial));
}

TEST(ParallelCartesianTest, EmptySideYieldsEmptyProduct) {
  fed::BindingTable left, right;
  left.vars = {"a"};
  right.vars = {"b"};
  for (int i = 0; i < 5000; ++i) {
    left.AppendRow({static_cast<rdf::TermId>(i + 1)});
  }
  ThreadPool pool(4);
  fed::BindingTable product = core::ParallelHashJoin(left, right, &pool, 4);
  EXPECT_EQ(product.NumRows(), 0u);
  EXPECT_EQ(product.vars.size(), 2u);
}

// ---------------------------------------------------------------------
// Crash-safe snapshots: SaveToDisk / LoadFromDisk
// ---------------------------------------------------------------------

std::string SnapshotPath(const std::string& name) {
  return ::testing::TempDir() + "lusail_" + name + ".cache";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(CacheSnapshotTest, RoundTripRestoresVerdictsAndCounts) {
  const std::string path = SnapshotPath("roundtrip");
  cache::FederationCache original;
  std::string k_yes = cache::FederationCache::Key("ep0", "ASK { a }");
  std::string k_no = cache::FederationCache::Key("ep0", "ASK { b }");
  std::string k_count = cache::FederationCache::Key("ep1", "COUNT q");
  original.PutVerdict(k_yes, "ep0", true);
  original.PutVerdict(k_no, "ep0", false);
  original.PutCount(k_count, "ep1", 42);
  ASSERT_TRUE(original.SaveToDisk(path).ok());

  cache::FederationCache restored;
  auto loaded = restored.LoadFromDisk(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 3u);
  EXPECT_EQ(restored.GetVerdict(k_yes), std::optional<bool>(true));
  EXPECT_EQ(restored.GetVerdict(k_no), std::optional<bool>(false));
  EXPECT_EQ(restored.GetCount(k_count), std::optional<uint64_t>(42));
  std::remove(path.c_str());
}

TEST(CacheSnapshotTest, ResultTablesAreDeliberatelyNotPersisted) {
  const std::string path = SnapshotPath("no_results");
  cache::FederationCache original;
  sparql::ResultTable table;
  table.vars = {"s"};
  table.rows.push_back({rdf::Term::Iri("http://ex/s")});
  original.PutResult("ep0", "SELECT q", table);
  ASSERT_TRUE(original.SaveToDisk(path).ok());

  cache::FederationCache restored;
  auto loaded = restored.LoadFromDisk(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 0u);
  EXPECT_FALSE(restored.GetResult("ep0", "SELECT q").has_value());
  std::remove(path.c_str());
}

TEST(CacheSnapshotTest, MissingSnapshotIsNotFound) {
  cache::FederationCache cache;
  auto loaded = cache.LoadFromDisk(SnapshotPath("does_not_exist"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CacheSnapshotTest, CorruptSnapshotIsRejectedWithoutTouchingTheCache) {
  const std::string path = SnapshotPath("corrupt");
  cache::FederationCache original;
  original.PutVerdict(cache::FederationCache::Key("ep0", "q"), "ep0", true);
  ASSERT_TRUE(original.SaveToDisk(path).ok());

  std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 20u);
  bytes[bytes.size() / 2] ^= 0x5a;  // Flip bits mid-body.
  WriteFile(path, bytes);

  cache::FederationCache restored;
  auto loaded = restored.LoadFromDisk(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(restored.VerdictStats().entries, 0u);
  std::remove(path.c_str());
}

TEST(CacheSnapshotTest, TruncatedSnapshotIsRejected) {
  const std::string path = SnapshotPath("truncated");
  cache::FederationCache original;
  original.PutVerdict(cache::FederationCache::Key("ep0", "q"), "ep0", true);
  ASSERT_TRUE(original.SaveToDisk(path).ok());
  std::string bytes = ReadFile(path);
  WriteFile(path, bytes.substr(0, bytes.size() / 2));

  cache::FederationCache restored;
  EXPECT_FALSE(restored.LoadFromDisk(path).ok());
  EXPECT_EQ(restored.VerdictStats().entries, 0u);
  std::remove(path.c_str());
}

TEST(CacheSnapshotTest, PreSaveInvalidationsStayDeadAfterLoad) {
  const std::string path = SnapshotPath("generations");
  cache::FederationCache original;
  std::string k0 = cache::FederationCache::Key("ep0", "q");
  std::string k1 = cache::FederationCache::Key("ep1", "q");
  original.PutVerdict(k0, "ep0", true);
  original.PutVerdict(k1, "ep1", true);
  // ep0's store mutated before the save: its entry must not resurrect
  // on a restarted process, even though it was written to the tier.
  original.Invalidate("ep0");
  ASSERT_TRUE(original.SaveToDisk(path).ok());

  cache::FederationCache restored;
  auto loaded = restored.LoadFromDisk(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 1u);
  EXPECT_FALSE(restored.GetVerdict(k0).has_value());
  EXPECT_EQ(restored.GetVerdict(k1), std::optional<bool>(true));

  // And an invalidation *after* the restore still works on restored
  // entries (the generation map survived the round trip).
  restored.Invalidate("ep1");
  EXPECT_FALSE(restored.GetVerdict(k1).has_value());
  std::remove(path.c_str());
}

TEST(CacheSnapshotTest, LiveEntriesWinOverSnapshotEntries) {
  const std::string path = SnapshotPath("live_wins");
  std::string key = cache::FederationCache::Key("ep0", "q");
  cache::FederationCache original;
  original.PutVerdict(key, "ep0", true);
  ASSERT_TRUE(original.SaveToDisk(path).ok());

  cache::FederationCache target;
  target.PutVerdict(key, "ep0", false);  // Fresher than the snapshot.
  auto loaded = target.LoadFromDisk(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 0u);
  EXPECT_EQ(target.GetVerdict(key), std::optional<bool>(false));
  std::remove(path.c_str());
}

TEST(CacheSnapshotTest, CachedAskEndpointWarmLoadsToZeroColdProbes) {
  const std::string path = SnapshotPath("ask_endpoint");
  auto store = [] {
    auto s = std::make_unique<store::TripleStore>();
    s->Add(rdf::TermTriple{rdf::Term::Iri("http://ex/s"),
                           rdf::Term::Iri("http://ex/p"),
                           rdf::Term::Integer(1)});
    s->Freeze();
    return s;
  };
  const std::string ask = "ASK { ?s <http://ex/p> ?o . }";

  // First process lifetime: serve, memoize, snapshot on shutdown.
  {
    cache::FederationCache verdicts;
    cache::CachedAskEndpoint endpoint(
        std::make_shared<net::SparqlEndpoint>("ep", store(),
                                              net::LatencyModel::None()),
        &verdicts);
    auto cold = endpoint.Query(ask);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_EQ(cold->table.rows.size(), 1u);
    EXPECT_EQ(endpoint.misses(), 1u);
    auto warm = endpoint.Query(ask);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm->table.rows.size(), 1u);
    EXPECT_EQ(endpoint.hits(), 1u);
    // Non-ASK traffic bypasses the verdict tier entirely.
    ASSERT_TRUE(
        endpoint.Query("SELECT ?s WHERE { ?s <http://ex/p> ?o . }").ok());
    EXPECT_EQ(endpoint.hits() + endpoint.misses(), 2u);
    ASSERT_TRUE(verdicts.SaveToDisk(path).ok());
  }

  // Restarted process: warm-load, then answer the repeated probe with
  // verdict hits > 0 and zero cold evaluations.
  {
    cache::FederationCache verdicts;
    ASSERT_TRUE(verdicts.LoadFromDisk(path).ok());
    cache::CachedAskEndpoint endpoint(
        std::make_shared<net::SparqlEndpoint>("ep", store(),
                                              net::LatencyModel::None()),
        &verdicts);
    auto warm = endpoint.Query(ask);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    EXPECT_EQ(warm->table.rows.size(), 1u);
    EXPECT_EQ(endpoint.hits(), 1u);
    EXPECT_EQ(endpoint.misses(), 0u);
    EXPECT_GT(verdicts.VerdictStats().hits, 0u);
  }
  std::remove(path.c_str());
}

TEST_F(SharedCacheLubmTest, SnapshotWarmStartSkipsEveryAskProbe) {
  const std::string path = SnapshotPath("warm_start");

  // First federator lifetime: cold run populates the shared cache, then
  // snapshots it at shutdown.
  std::multiset<std::string> reference;
  const std::string query = queries_.front().second;
  {
    cache::FederationCache cache;
    federation_->set_query_cache(&cache);
    core::LusailEngine engine(federation_.get());
    auto cold = engine.Execute(query, Deadline());
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_GT(cold->profile.ask_requests, 0u);
    reference = RowSet(cold->table);
    ASSERT_TRUE(cache.SaveToDisk(path).ok());
    federation_->set_query_cache(nullptr);
  }

  // Restarted federator: a fresh cache warm-loaded from the snapshot
  // answers every source-selection probe, so the repeated query issues
  // zero ASK requests yet returns identical rows.
  {
    cache::FederationCache cache;
    auto loaded = cache.LoadFromDisk(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_GT(*loaded, 0u);
    federation_->set_query_cache(&cache);
    core::LusailEngine engine(federation_.get());
    auto warm = engine.Execute(query, Deadline());
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    EXPECT_EQ(warm->profile.ask_requests, 0u);
    EXPECT_GT(cache.VerdictStats().hits, 0u);
    EXPECT_EQ(RowSet(warm->table), reference);
    federation_->set_query_cache(nullptr);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Member-id fan-out: Invalidate(logical id) reaches shard/replica ids
// ---------------------------------------------------------------------

TEST(FederationCacheTest, InvalidateReachesRegisteredMemberIds) {
  cache::FederationCache cache;
  cache.RegisterMemberIds("lubm", {"lubm#0", "lubm#1"});

  std::string k0 = cache::FederationCache::Key("lubm#0", "ASK { a }");
  std::string k1 = cache::FederationCache::Key("lubm#1", "COUNT q");
  std::string k_logical = cache::FederationCache::Key("lubm", "ASK { b }");
  std::string k_other = cache::FederationCache::Key("other", "ASK { a }");
  cache.PutVerdict(k0, "lubm#0", true);
  cache.PutCount(k1, "lubm#1", 7);
  cache.PutVerdict(k_logical, "lubm", false);
  cache.PutVerdict(k_other, "other", true);

  // Invalidating the *logical* endpoint must outdate the member-keyed
  // entries too — cached per-shard verdicts must not outlive the logical
  // endpoint's data — while unrelated endpoints keep theirs.
  cache.Invalidate("lubm");
  EXPECT_FALSE(cache.GetVerdict(k0).has_value());
  EXPECT_FALSE(cache.GetCount(k1).has_value());
  EXPECT_FALSE(cache.GetVerdict(k_logical).has_value());
  EXPECT_EQ(cache.GetVerdict(k_other), std::optional<bool>(true));
}

TEST(FederationCacheTest, MemberRegistrationAccumulatesAndDedups) {
  cache::FederationCache cache;
  cache.RegisterMemberIds("ep", {"ep#0"});
  cache.RegisterMemberIds("ep", {"ep#0", "ep#1"});  // Idempotent + growth.
  cache.RegisterMemberIds("ep", {"ep"});  // Self-registration is a no-op.

  std::string k0 = cache::FederationCache::Key("ep#0", "q");
  std::string k1 = cache::FederationCache::Key("ep#1", "q");
  cache.PutVerdict(k0, "ep#0", true);
  cache.PutVerdict(k1, "ep#1", true);
  cache.Invalidate("ep");
  EXPECT_FALSE(cache.GetVerdict(k0).has_value());
  EXPECT_FALSE(cache.GetVerdict(k1).has_value());

  // Invalidating a member directly still touches only that member.
  cache.PutVerdict(k0, "ep#0", true);
  cache.PutVerdict(k1, "ep#1", true);
  cache.Invalidate("ep#0");
  EXPECT_FALSE(cache.GetVerdict(k0).has_value());
  EXPECT_EQ(cache.GetVerdict(k1), std::optional<bool>(true));
}

}  // namespace
}  // namespace lusail
