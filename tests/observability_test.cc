// Tests for the observability layer: JSON tree, span tracer, latency
// histograms, the cross-query endpoint stats registry, per-query trace
// recording through the engines, and the EXPLAIN report.

#include <algorithm>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/fedx_engine.h"
#include "core/lusail_engine.h"
#include "net/fault_injection.h"
#include "net/resilience.h"
#include "obs/endpoint_stats.h"
#include "obs/explain.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "workload/federation_builder.h"
#include "workload/qfed_generator.h"

namespace lusail {
namespace {

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

TEST(JsonTest, SerializeParseRoundTrip) {
  obs::JsonValue obj;
  obj.Set("name", obs::JsonValue("query \"a\"\n"));
  obj.Set("count", obs::JsonValue(uint64_t{42}));
  obj.Set("ratio", obs::JsonValue(0.5));
  obj.Set("ok", obs::JsonValue(true));
  obj.Set("missing", obs::JsonValue());
  obs::JsonValue arr;
  arr.Append(obs::JsonValue(1));
  arr.Append(obs::JsonValue("two"));
  obs::JsonValue nested;
  nested.Set("deep", obs::JsonValue(-3.25));
  arr.Append(std::move(nested));
  obj.Set("items", std::move(arr));

  auto parsed = obs::JsonValue::Parse(obj.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, obj);
  // Pretty output parses back to the same tree too.
  auto pretty = obs::JsonValue::Parse(obj.Pretty());
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(*pretty, obj);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::JsonValue::Parse("{").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("[1, 2,]").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("{\"a\": }").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("tru").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("{} trailing").ok());
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(TracerTest, SpanTreeAndAnnotations) {
  obs::Tracer tracer;
  obs::SpanId root = tracer.StartSpan("query", "query");
  obs::SpanId phase = tracer.StartSpan("LADE analysis", "phase", root);
  tracer.Annotate(phase, "subqueries", uint64_t{2});
  tracer.EndSpan(phase);
  tracer.EndSpan(root);
  tracer.EndSpan(phase);  // Double-close is a no-op.

  obs::Trace trace = tracer.Snapshot();
  ASSERT_EQ(trace.spans.size(), 2u);
  const obs::Span* found = trace.Find(phase);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->parent, root);
  EXPECT_GE(found->duration_us, 0.0);
  ASSERT_EQ(found->annotations.size(), 1u);
  EXPECT_EQ(found->annotations[0].key, "subqueries");
  EXPECT_EQ(found->annotations[0].value, "2");
  EXPECT_EQ(trace.ChildrenOf(root).size(), 1u);
  EXPECT_EQ(trace.ByCategory("phase").size(), 1u);
}

TEST(TracerTest, ConcurrentSpanEmission) {
  obs::Tracer tracer;
  obs::SpanId root = tracer.StartSpan("query", "query");
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, root, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::SpanId span = tracer.StartSpan(
            "request " + std::to_string(t) + "." + std::to_string(i),
            "request", root);
        tracer.Annotate(span, "i", static_cast<uint64_t>(i));
        tracer.EndSpan(span);
      }
    });
  }
  for (auto& th : threads) th.join();
  tracer.EndSpan(root);

  obs::Trace trace = tracer.Snapshot();
  ASSERT_EQ(trace.spans.size(), 1u + kThreads * kSpansPerThread);
  std::set<obs::SpanId> ids;
  for (const obs::Span& span : trace.spans) {
    EXPECT_TRUE(ids.insert(span.id).second) << "duplicate span id";
    if (span.id != root) {
      EXPECT_EQ(span.parent, root);
      EXPECT_GE(span.duration_us, 0.0);
    }
  }
}

TEST(TracerTest, ChromeExportIsValidJson) {
  obs::Tracer tracer;
  obs::SpanId root = tracer.StartSpan("query", "query");
  obs::SpanId child = tracer.StartSpan("phase A", "phase", root);
  tracer.Annotate(child, "note", "x");
  tracer.EndSpan(child);
  tracer.EndSpan(root);

  auto parsed = obs::JsonValue::Parse(tracer.Snapshot().ToChromeJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& events = parsed->Get("traceEvents");
  ASSERT_EQ(events.type(), obs::JsonValue::Type::kArray);
  ASSERT_EQ(events.items().size(), 2u);
  for (const obs::JsonValue& ev : events.items()) {
    EXPECT_EQ(ev.Get("ph").AsString(), "X");
    EXPECT_TRUE(ev.Has("name"));
    EXPECT_TRUE(ev.Has("cat"));
    EXPECT_TRUE(ev.Has("ts"));
    EXPECT_TRUE(ev.Has("dur"));
    EXPECT_TRUE(ev.Has("tid"));
  }
}

// ---------------------------------------------------------------------
// Latency histogram + endpoint stats registry
// ---------------------------------------------------------------------

TEST(LatencyHistogramTest, PercentilesAndMerge) {
  obs::LatencyHistogram hist;
  for (int i = 1; i <= 100; ++i) hist.Record(static_cast<double>(i));
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_DOUBLE_EQ(hist.MinMs(), 1.0);
  EXPECT_DOUBLE_EQ(hist.MaxMs(), 100.0);
  // Log-bucketed estimates: each bucket spans a factor of 2, so the
  // estimate is within that factor of the true quantile.
  double p50 = hist.P50();
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_LE(hist.P50(), hist.P95());
  EXPECT_LE(hist.P95(), hist.P99());

  obs::LatencyHistogram other;
  other.Record(1000.0);
  other.Merge(hist);
  EXPECT_EQ(other.count(), 101u);
  EXPECT_DOUBLE_EQ(other.MaxMs(), 1000.0);
  EXPECT_DOUBLE_EQ(other.MinMs(), 1.0);

  obs::JsonValue json = hist.ToJson();
  EXPECT_EQ(json.Get("count").AsUint(), 100u);
  EXPECT_TRUE(json.Has("p50_ms"));
  EXPECT_TRUE(json.Has("p99_ms"));
}

TEST(EndpointStatsRegistryTest, RecordMergeAndJson) {
  obs::EndpointStatsRegistry reg;
  reg.RecordSuccess("ep1", 5.0, 100, 2000, 10);
  reg.RecordSuccess("ep1", 7.0, 100, 3000, 20);
  reg.RecordFailure("ep1", /*timeout=*/true);
  reg.RecordFailure("ep2", /*timeout=*/false);
  reg.RecordResilience("ep1", 2, 1, 1);

  obs::EndpointStats ep1 = reg.Get("ep1");
  EXPECT_EQ(ep1.requests, 3u);
  EXPECT_EQ(ep1.successes, 2u);
  EXPECT_EQ(ep1.timeouts, 1u);
  EXPECT_EQ(ep1.retries, 2u);
  EXPECT_EQ(ep1.breaker_rejections, 1u);
  EXPECT_EQ(ep1.bytes_received, 5000u);
  EXPECT_EQ(ep1.rows_received, 30u);
  EXPECT_EQ(ep1.latency.count(), 2u);
  EXPECT_EQ(reg.Get("ep2").errors, 1u);
  EXPECT_EQ(reg.Get("unknown").requests, 0u);

  obs::EndpointStatsRegistry other;
  other.RecordSuccess("ep1", 3.0, 50, 500, 5);
  other.RecordSuccess("ep3", 1.0, 10, 10, 1);
  other.Merge(reg);
  EXPECT_EQ(other.size(), 3u);
  EXPECT_EQ(other.Get("ep1").requests, 4u);
  EXPECT_EQ(other.Get("ep1").latency.count(), 3u);

  obs::JsonValue json = other.ToJson();
  const obs::JsonValue& endpoints = json.Get("endpoints");
  EXPECT_TRUE(endpoints.Has("ep1"));
  EXPECT_TRUE(endpoints.Has("ep3"));
  EXPECT_EQ(endpoints.Get("ep1").Get("requests").AsUint(), 4u);
  EXPECT_FALSE(other.ToText().empty());
}

// ---------------------------------------------------------------------
// MetricsCollector: sub-millisecond rounding + concurrency
// ---------------------------------------------------------------------

TEST(MetricsCollectorTest, SubMillisecondNetworkTimeAccumulates) {
  // Regression: the network-time accumulator used to *truncate* each
  // request to whole microseconds, so 0.6 us requests summed to zero.
  fed::MetricsCollector metrics;
  net::QueryResponse response;
  response.network_ms = 0.0006;  // 0.6 us -> rounds to 1 us.
  for (int i = 0; i < 1000; ++i) metrics.RecordRequest(response, false);
  fed::ExecutionProfile profile;
  metrics.FillCounters(&profile);
  EXPECT_NEAR(profile.network_ms, 1.0, 1e-9);
}

TEST(MetricsCollectorTest, ConcurrentRecordingIsExact) {
  fed::MetricsCollector metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics, t] {
      net::QueryResponse response;
      response.request_bytes = 10;
      response.response_bytes = 100;
      response.network_ms = 0.25;
      for (int i = 0; i < kPerThread; ++i) {
        metrics.RecordRequest(response, /*is_ask=*/i % 2 == 0);
        if (i == 0) {
          metrics.RecordEndpointDropped("ep" + std::to_string(t));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  fed::ExecutionProfile profile;
  metrics.FillCounters(&profile);
  EXPECT_EQ(profile.requests, uint64_t{kThreads * kPerThread});
  EXPECT_EQ(profile.ask_requests, uint64_t{kThreads * kPerThread / 2});
  EXPECT_EQ(profile.bytes_sent, uint64_t{kThreads * kPerThread * 10});
  EXPECT_EQ(profile.bytes_received, uint64_t{kThreads * kPerThread * 100});
  EXPECT_NEAR(profile.network_ms, kThreads * kPerThread * 0.25, 1e-6);
  EXPECT_EQ(profile.endpoints_failed, uint64_t{kThreads});
  EXPECT_TRUE(profile.partial);
}

// ---------------------------------------------------------------------
// End-to-end traced execution
// ---------------------------------------------------------------------

TEST(TracedExecutionTest, LusailQueryProducesFullSpanTree) {
  auto federation = workload::BuildFederation(workload::Figure1Federation(),
                                              net::LatencyModel::None());
  obs::EndpointStatsRegistry registry;
  federation->set_stats_registry(&registry);

  core::LusailOptions options;
  options.trace = true;
  core::LusailEngine engine(federation.get(), options);
  auto result = engine.Execute(workload::Figure2QueryQa());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.rows.size(), 3u);

  ASSERT_NE(result->profile.trace, nullptr);
  const obs::Trace& trace = *result->profile.trace;

  // Exactly one root "query" span; everything else hangs off it.
  auto roots = trace.ByCategory("query");
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->parent, 0u);
  for (const obs::Span& span : trace.spans) {
    if (span.id == roots[0]->id) continue;
    EXPECT_NE(trace.Find(span.parent), nullptr)
        << "span '" << span.name << "' has a dangling parent";
    EXPECT_GE(span.duration_us, 0.0) << span.name;
  }

  // The pipeline phases are all present.
  std::set<std::string> phase_names;
  for (const obs::Span* span : trace.ByCategory("phase")) {
    phase_names.insert(span->name);
  }
  EXPECT_TRUE(phase_names.count("source selection"));
  EXPECT_TRUE(phase_names.count("LADE analysis"));
  EXPECT_TRUE(phase_names.count("SAPE execution"));

  // Q_a decomposes (its advisor/degreeFrom interlink makes ?U a GJV), so
  // there are per-subquery spans under SAPE.
  EXPECT_GE(trace.ByCategory("subquery").size(), 2u);

  // Every endpoint request is covered by a "request" span, and both
  // endpoints appear.
  auto requests = trace.ByCategory("request");
  EXPECT_EQ(requests.size(), result->profile.requests);
  std::set<std::string> endpoints_hit;
  for (const obs::Span* span : requests) endpoints_hit.insert(span->name);
  EXPECT_GE(endpoints_hit.size(), 2u);

  // The trace exports as loadable Chrome trace-event JSON: one complete
  // event per span plus one process_name metadata event per registered
  // process (the federator registers itself when tracing is on).
  auto chrome = obs::JsonValue::Parse(trace.ToChromeJsonString());
  ASSERT_TRUE(chrome.ok()) << chrome.status().ToString();
  EXPECT_EQ(chrome->Get("traceEvents").items().size(),
            trace.spans.size() + trace.processes.size());
  EXPECT_GE(trace.processes.size(), 1u);

  // The stats registry saw the same traffic.
  EXPECT_GE(registry.size(), 2u);
  uint64_t recorded = 0;
  for (const auto& [id, stats] : registry.All()) recorded += stats.requests;
  EXPECT_EQ(recorded, result->profile.requests);
}

TEST(TracedExecutionTest, TracingDisabledAllocatesNothing) {
  auto federation = workload::BuildFederation(workload::Figure1Federation(),
                                              net::LatencyModel::None());
  core::LusailEngine engine(federation.get());  // trace defaults to off.
  auto result = engine.Execute(workload::Figure2QueryQa());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->profile.trace, nullptr);
}

TEST(TracedExecutionTest, BaselineTraceIsComparable) {
  auto federation = workload::BuildFederation(workload::Figure1Federation(),
                                              net::LatencyModel::None());
  baselines::FedXOptions options;
  options.trace = true;
  baselines::FedXEngine engine(federation.get(), options);
  auto result = engine.Execute(workload::Figure2QueryQa());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->profile.trace, nullptr);
  const obs::Trace& trace = *result->profile.trace;
  ASSERT_EQ(trace.ByCategory("query").size(), 1u);
  std::set<std::string> phase_names;
  for (const obs::Span* span : trace.ByCategory("phase")) {
    phase_names.insert(span->name);
  }
  EXPECT_TRUE(phase_names.count("source selection"));
  EXPECT_TRUE(phase_names.count("bound-join execution"));
  EXPECT_EQ(trace.ByCategory("request").size(), result->profile.requests);
}

TEST(TracedExecutionTest, RetriesAppearAsChildSpans) {
  // Wrap the Figure 1 endpoints in deterministic transient-fault
  // injectors; with the standard retry policy the query still succeeds
  // and every retried request shows its attempts as child spans.
  auto base = workload::BuildFederation(workload::Figure1Federation(),
                                        net::LatencyModel::None());
  fed::Federation faulty;
  std::vector<std::shared_ptr<net::FaultInjectingEndpoint>> injectors;
  for (size_t i = 0; i < base->size(); ++i) {
    auto inner = std::shared_ptr<net::Endpoint>(base->endpoint(i),
                                                [](net::Endpoint*) {});
    auto injector = std::make_shared<net::FaultInjectingEndpoint>(
        inner, net::FaultProfile::Transient(0.3, /*seed=*/42));
    injectors.push_back(injector);
    faulty.Add(injector);
  }

  core::LusailOptions options;
  options.trace = true;
  options.retry_policy = net::RetryPolicy::Standard();
  core::LusailEngine engine(&faulty, options);
  auto result = engine.Execute(workload::Figure2QueryQa());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.rows.size(), 3u);
  ASSERT_GT(result->profile.retries, 0u) << "fault injection produced no "
                                            "retries; the test is vacuous";

  ASSERT_NE(result->profile.trace, nullptr);
  const obs::Trace& trace = *result->profile.trace;
  auto retries = trace.ByCategory("retry");
  ASSERT_GE(retries.size(), 1u);
  for (const obs::Span* retry : retries) {
    const obs::Span* parent = trace.Find(retry->parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(parent->category, "request");
    // A retried request has its first attempt recorded too.
    bool has_first_attempt = false;
    for (const obs::Span* child : trace.ChildrenOf(parent->id)) {
      if (child->category == "attempt") has_first_attempt = true;
    }
    EXPECT_TRUE(has_first_attempt);
  }
}

// ---------------------------------------------------------------------
// ProfileToJson
// ---------------------------------------------------------------------

TEST(ProfileToJsonTest, AllCountersSurvive) {
  fed::ExecutionProfile profile;
  profile.requests = 12;
  profile.ask_requests = 3;
  profile.bytes_sent = 400;
  profile.bytes_received = 5000;
  profile.rows_received = 77;
  profile.network_ms = 1.5;
  profile.total_ms = 9.25;
  profile.pushed_optionals = 1;
  profile.peak_intermediate_rows = 64;
  profile.retries = 2;
  profile.failed_endpoint_ids = {"ep1"};
  profile.endpoints_failed = 1;
  profile.partial = true;

  obs::JsonValue json = fed::ProfileToJson(profile);
  EXPECT_EQ(json.Get("requests").AsUint(), 12u);
  EXPECT_EQ(json.Get("ask_requests").AsUint(), 3u);
  EXPECT_EQ(json.Get("bytes_received").AsUint(), 5000u);
  EXPECT_EQ(json.Get("rows_received").AsUint(), 77u);
  EXPECT_DOUBLE_EQ(json.Get("network_ms").AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(json.Get("total_ms").AsDouble(), 9.25);
  EXPECT_EQ(json.Get("pushed_optionals").AsUint(), 1u);
  EXPECT_EQ(json.Get("peak_intermediate_rows").AsUint(), 64u);
  EXPECT_EQ(json.Get("retries").AsUint(), 2u);
  EXPECT_TRUE(json.Get("partial").AsBool());
  ASSERT_EQ(json.Get("failed_endpoint_ids").items().size(), 1u);
  EXPECT_EQ(json.Get("failed_endpoint_ids").items()[0].AsString(), "ep1");
  // And the whole record serializes to parseable JSON.
  EXPECT_TRUE(obs::JsonValue::Parse(json.Serialize()).ok());
}

// ---------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------

void ExpectRoundTrip(const obs::ExplainReport& report) {
  auto reparsed = obs::JsonValue::Parse(report.ToJson().Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  auto back = obs::ExplainReport::FromJson(*reparsed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, report);
}

TEST(ExplainTest, ReportsGlobalJoinVariables) {
  auto federation = workload::BuildFederation(workload::Figure1Federation(),
                                              net::LatencyModel::None());
  core::LusailEngine engine(federation.get());
  auto report = obs::Explain(engine, workload::Figure2QueryQa());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // ?U (the advisor's alma mater) joins values from different endpoints:
  // the paper's canonical GJV.
  EXPECT_NE(std::find(report->gjvs.begin(), report->gjvs.end(), "?U"),
            report->gjvs.end());
  ASSERT_GE(report->subqueries.size(), 2u);
  // The join order is a permutation of the subquery indices.
  std::vector<int> sorted = report->join_order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expected(report->subqueries.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(sorted, expected);
  for (const obs::ExplainSubquery& sq : report->subqueries) {
    EXPECT_FALSE(sq.patterns.empty());
    EXPECT_FALSE(sq.endpoints.empty());
  }
  EXPECT_EQ(report->delay_threshold, "mu+sigma");

  std::string text = report->ToText();
  EXPECT_NE(text.find("EXPLAIN (Lusail)"), std::string::npos);
  EXPECT_NE(text.find("?U"), std::string::npos);
  ExpectRoundTrip(*report);
}

TEST(ExplainTest, ReportsPushedOptionals) {
  workload::QFedGenerator gen(workload::QFedConfig::Small());
  auto federation = workload::BuildFederation(gen.GenerateAll(),
                                              net::LatencyModel::None());
  core::LusailEngine engine(federation.get());
  auto report =
      obs::Explain(engine, workload::QFedGenerator::C2P2BO());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // C2P2BO's dm:description OPTIONAL is colocated with its subquery at
  // dailymed, so LADE pushes it down (asserted end-to-end in
  // optional_pushdown_test; here the plan itself reports it).
  EXPECT_EQ(report->pushed_optionals, 1u);
  uint64_t in_subqueries = 0;
  for (const obs::ExplainSubquery& sq : report->subqueries) {
    in_subqueries += sq.pushed_optionals;
  }
  EXPECT_EQ(in_subqueries, 1u);
  EXPECT_NE(report->ToText().find("pushed OPTIONAL"), std::string::npos);
  ExpectRoundTrip(*report);
}

TEST(ExplainTest, ReportsDelayedSubqueries) {
  // A three-endpoint chain with one dominating pattern cardinality: the
  // 200-row tail subquery must be scheduled into SAPE's delayed phase.
  std::vector<workload::EndpointSpec> specs(3);
  specs[0].id = "small-a";
  specs[1].id = "small-b";
  specs[2].id = "big";
  for (int i = 0; i < 5; ++i) {
    specs[0].triples.push_back(
        {rdf::Term::Iri("http://ex/s" + std::to_string(i)),
         rdf::Term::Iri("http://ex/p1"),
         rdf::Term::Iri("http://ex/x" + std::to_string(i))});
    specs[1].triples.push_back(
        {rdf::Term::Iri("http://ex/x" + std::to_string(i)),
         rdf::Term::Iri("http://ex/p2"),
         rdf::Term::Iri("http://ex/y" + std::to_string(i))});
  }
  for (int i = 0; i < 200; ++i) {
    specs[2].triples.push_back(
        {rdf::Term::Iri("http://ex/y" + std::to_string(i % 5)),
         rdf::Term::Iri("http://ex/p3"),
         rdf::Term::Integer(i)});
  }
  auto federation =
      workload::BuildFederation(specs, net::LatencyModel::None());
  core::LusailEngine engine(federation.get());

  auto report = obs::Explain(engine,
                             "SELECT ?s ?z WHERE { "
                             "?s <http://ex/p1> ?x . "
                             "?x <http://ex/p2> ?y . "
                             "?y <http://ex/p3> ?z . }");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GE(report->subqueries.size(), 2u);

  const obs::ExplainSubquery* delayed = nullptr;
  const obs::ExplainSubquery* concurrent = nullptr;
  for (const obs::ExplainSubquery& sq : report->subqueries) {
    if (sq.delayed) delayed = &sq;
    if (!sq.delayed) concurrent = &sq;
  }
  ASSERT_NE(delayed, nullptr) << report->ToText();
  ASSERT_NE(concurrent, nullptr) << "DecideDelayed must keep at least one "
                                    "subquery concurrent";
  // The delayed subquery is the dominating one.
  EXPECT_GE(delayed->estimated_cardinality,
            concurrent->estimated_cardinality);
  EXPECT_NE(report->ToText().find("[delayed]"), std::string::npos);
  ExpectRoundTrip(*report);

  // The plan matches execution: the query still answers correctly.
  auto result = engine.Execute(
      "SELECT ?s ?z WHERE { ?s <http://ex/p1> ?x . "
      "?x <http://ex/p2> ?y . ?y <http://ex/p3> ?z . }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.rows.size(), 200u);
}

TEST(ExplainTest, FromJsonRejectsMalformedReports) {
  auto missing = obs::JsonValue::Parse("{\"engine\": \"Lusail\"}");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(obs::ExplainReport::FromJson(*missing).ok());

  auto wrong_type =
      obs::JsonValue::Parse("{\"engine\": 7, \"query\": \"q\"}");
  ASSERT_TRUE(wrong_type.ok());
  EXPECT_FALSE(obs::ExplainReport::FromJson(*wrong_type).ok());
}

}  // namespace
}  // namespace lusail
