#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "net/fault_injection.h"
#include "net/latency_model.h"
#include "net/resilience.h"
#include "net/sparql_endpoint.h"
#include "store/triple_store.h"

namespace lusail::net {
namespace {

std::unique_ptr<store::TripleStore> MakeStore() {
  auto store = std::make_unique<store::TripleStore>();
  for (int i = 0; i < 10; ++i) {
    store->Add(rdf::TermTriple{
        rdf::Term::Iri("http://ex/s" + std::to_string(i)),
        rdf::Term::Iri("http://ex/p"), rdf::Term::Integer(i)});
  }
  store->Freeze();
  return store;
}

TEST(LatencyModelTest, CostFormula) {
  LatencyModel model{10.0, 100.0, 0.0};  // 10ms + bytes/100 per ms.
  EXPECT_DOUBLE_EQ(model.CostMillis(50, 150), 10.0 + 2.0);
  LatencyModel infinite_bw{5.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(infinite_bw.CostMillis(1000, 1000), 5.0);
}

TEST(LatencyModelTest, PresetsAreOrdered) {
  EXPECT_LT(LatencyModel::LocalCluster().request_latency_ms,
            LatencyModel::GeoDistributed().request_latency_ms);
  EXPECT_GT(LatencyModel::LocalCluster().bandwidth_bytes_per_ms,
            LatencyModel::GeoDistributed().bandwidth_bytes_per_ms);
  EXPECT_DOUBLE_EQ(LatencyModel::None().CostMillis(1 << 20, 1 << 20), 0.0);
}

TEST(SparqlEndpointTest, AnswersSelect) {
  SparqlEndpoint endpoint("ep0", MakeStore(), LatencyModel::None());
  auto response =
      endpoint.Query("SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->table.NumRows(), 10u);
  EXPECT_GT(response->response_bytes, 0u);
  EXPECT_GT(response->request_bytes, 0u);
}

TEST(SparqlEndpointTest, AnswersAsk) {
  SparqlEndpoint endpoint("ep0", MakeStore(), LatencyModel::None());
  auto yes = endpoint.Query("ASK { ?s <http://ex/p> 3 . }");
  ASSERT_TRUE(yes.ok());
  EXPECT_EQ(yes->table.NumRows(), 1u);
  auto no = endpoint.Query("ASK { ?s <http://ex/p> 99 . }");
  ASSERT_TRUE(no.ok());
  EXPECT_EQ(no->table.NumRows(), 0u);
}

TEST(SparqlEndpointTest, RejectsBadQueryText) {
  SparqlEndpoint endpoint("ep0", MakeStore(), LatencyModel::None());
  auto response = endpoint.Query("this is not sparql");
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kParseError);
}

TEST(SparqlEndpointTest, AccumulatesStats) {
  SparqlEndpoint endpoint("ep0", MakeStore(), LatencyModel::None());
  ASSERT_TRUE(endpoint.Query("ASK { ?s ?p ?o . }").ok());
  ASSERT_TRUE(
      endpoint.Query("SELECT ?s WHERE { ?s <http://ex/p> ?o . }").ok());
  EndpointStats stats = endpoint.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.ask_requests, 1u);
  EXPECT_EQ(stats.rows_out, 11u);  // 1 ASK row + 10 bindings.
  EXPECT_GT(stats.bytes_in, 0u);
  endpoint.ResetStats();
  EXPECT_EQ(endpoint.stats().requests, 0u);
}

TEST(SparqlEndpointTest, ChargesNetworkCost) {
  // Accounting-only model (no sleeping): the charge must follow the
  // formula exactly.
  LatencyModel model{7.0, 1000.0, 0.0};
  SparqlEndpoint endpoint("ep0", MakeStore(), model);
  std::string query = "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }";
  auto response = endpoint.Query(query);
  ASSERT_TRUE(response.ok());
  double expected =
      7.0 + (query.size() + response->response_bytes) / 1000.0;
  EXPECT_DOUBLE_EQ(response->network_ms, expected);
}

TEST(SparqlEndpointTest, SleepScaleImposesRealDelay) {
  LatencyModel model{20.0, 0.0, 1.0};
  SparqlEndpoint endpoint("ep0", MakeStore(), model);
  Stopwatch timer;
  ASSERT_TRUE(endpoint.Query("ASK { ?s ?p ?o . }").ok());
  EXPECT_GE(timer.ElapsedMillis(), 15.0);
}

// ---------------------------------------------------------------------
// Retry loop deadline handling
// ---------------------------------------------------------------------

TEST(RetryDeadlineTest, ExpiredDeadlineFailsBeforeAnyAttempt) {
  SparqlEndpoint endpoint("ep0", MakeStore(), LatencyModel::None());
  Deadline deadline = Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  RetryOutcome outcome;
  auto r = QueryWithRetry(&endpoint, "ASK { ?s ?p ?o . }", deadline,
                          RetryPolicy::Standard(4), nullptr, &outcome);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(outcome.attempts, 0);
}

TEST(RetryDeadlineTest, BackoffNeverSleepsPastDeadline) {
  // A permanently-down endpoint with a retry budget whose nominal backoff
  // (50 attempts x up to 1 s) dwarfs the 40 ms deadline: the loop must
  // give up at the deadline, not after the backoff schedule.
  auto injector = std::make_shared<FaultInjectingEndpoint>(
      std::make_shared<SparqlEndpoint>("ep0", MakeStore(),
                                       LatencyModel::None()),
      FaultProfile::None());
  injector->set_down(true);
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_ms = 30.0;
  policy.max_backoff_ms = 1000.0;
  Deadline deadline = Deadline::AfterMillis(40);
  Stopwatch timer;
  RetryOutcome outcome;
  auto r = QueryWithRetry(injector.get(), "ASK { ?s ?p ?o . }", deadline,
                          policy, nullptr, &outcome);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_LT(timer.ElapsedMillis(), 500.0);
  EXPECT_LE(outcome.backoff_ms, 80.0);
  EXPECT_LT(outcome.attempts, 50);
}

TEST(RetryDeadlineTest, RetrySucceedsWithinGenerousDeadline) {
  auto injector = std::make_shared<FaultInjectingEndpoint>(
      std::make_shared<SparqlEndpoint>("ep0", MakeStore(),
                                       LatencyModel::None()),
      FaultProfile::Transient(0.5, 3));
  RetryPolicy policy = RetryPolicy::Standard(10);
  policy.initial_backoff_ms = 0.1;
  policy.max_backoff_ms = 0.5;
  for (int i = 0; i < 10; ++i) {
    RetryOutcome outcome;
    auto r = QueryWithRetry(injector.get(), "ASK { ?s <http://ex/p> ?o . }",
                            Deadline::AfterMillis(5000), policy, nullptr,
                            &outcome);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GE(outcome.attempts, 1);
  }
}

TEST(SparqlEndpointTest, FreezesUnfrozenStore) {
  auto store = std::make_unique<store::TripleStore>();
  store->Add(rdf::TermTriple{rdf::Term::Iri("http://s"),
                             rdf::Term::Iri("http://p"),
                             rdf::Term::Iri("http://o")});
  // Intentionally not frozen.
  SparqlEndpoint endpoint("ep0", std::move(store), LatencyModel::None());
  EXPECT_TRUE(endpoint.store().frozen());
}

}  // namespace
}  // namespace lusail::net
