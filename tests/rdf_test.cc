#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"

namespace lusail::rdf {
namespace {

// ---------------------------------------------------------------------
// Term
// ---------------------------------------------------------------------

TEST(TermTest, Constructors) {
  Term iri = Term::Iri("http://example.org/a");
  EXPECT_TRUE(iri.is_iri());
  EXPECT_EQ(iri.lexical(), "http://example.org/a");

  Term lit = Term::Literal("hello");
  EXPECT_TRUE(lit.is_literal());
  EXPECT_TRUE(lit.datatype().empty());

  Term typed = Term::TypedLiteral("5", std::string(kXsdInteger));
  EXPECT_TRUE(typed.IsNumeric());
  EXPECT_DOUBLE_EQ(typed.AsDouble(), 5.0);

  Term lang = Term::LangLiteral("bonjour", "fr");
  EXPECT_EQ(lang.lang(), "fr");

  Term blank = Term::BlankNode("b0");
  EXPECT_TRUE(blank.is_blank());
}

TEST(TermTest, IntegerAndDoubleHelpers) {
  EXPECT_EQ(Term::Integer(-7).lexical(), "-7");
  EXPECT_EQ(Term::Integer(-7).datatype(), kXsdInteger);
  EXPECT_TRUE(Term::Double(2.5).IsNumeric());
  EXPECT_DOUBLE_EQ(Term::Double(2.5).AsDouble(), 2.5);
}

TEST(TermTest, ToStringForms) {
  EXPECT_EQ(Term::Iri("http://x/a").ToString(), "<http://x/a>");
  EXPECT_EQ(Term::Literal("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Term::LangLiteral("hi", "en").ToString(), "\"hi\"@en");
  EXPECT_EQ(Term::TypedLiteral("5", "http://dt").ToString(),
            "\"5\"^^<http://dt>");
  EXPECT_EQ(Term::BlankNode("b1").ToString(), "_:b1");
}

TEST(TermTest, EscapingInToString) {
  Term t = Term::Literal("a \"b\"\nc\\d");
  std::string s = t.ToString();
  auto parsed = Term::Parse(s);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, t);
}

struct RoundTripCase {
  const char* label;
  Term term;
};

class TermRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(TermRoundTripTest, ParseToStringRoundTrips) {
  const Term& term = GetParam().term;
  auto parsed = Term::Parse(term.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, term);
  EXPECT_EQ(parsed->Hash(), term.Hash());
}

INSTANTIATE_TEST_SUITE_P(
    Forms, TermRoundTripTest,
    ::testing::Values(
        RoundTripCase{"iri", Term::Iri("http://example.org/x?q=1#f")},
        RoundTripCase{"plain", Term::Literal("plain text")},
        RoundTripCase{"empty", Term::Literal("")},
        RoundTripCase{"lang", Term::LangLiteral("hallo", "de-DE")},
        RoundTripCase{"typed", Term::Integer(123456789)},
        RoundTripCase{"negative", Term::Integer(-5)},
        RoundTripCase{"double", Term::Double(3.25)},
        RoundTripCase{"blank", Term::BlankNode("node42")},
        RoundTripCase{"escapes", Term::Literal("tab\t nl\n q\" bs\\")}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return info.param.label;
    });

TEST(TermTest, ParseErrors) {
  EXPECT_FALSE(Term::Parse("").ok());
  EXPECT_FALSE(Term::Parse("<unterminated").ok());
  EXPECT_FALSE(Term::Parse("\"unterminated").ok());
  EXPECT_FALSE(Term::Parse("plainword").ok());
  EXPECT_FALSE(Term::Parse("\"x\"^^notiri").ok());
}

TEST(TermTest, OrderingIsTotal) {
  Term a = Term::Iri("http://a");
  Term b = Term::Iri("http://b");
  Term lit = Term::Literal("http://a");
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a < lit || lit < a);  // Different kinds are ordered.
  EXPECT_FALSE(a < a);
}

TEST(TermTest, EqualityDistinguishesKindAndSuffixes) {
  EXPECT_NE(Term::Iri("x"), Term::Literal("x"));
  EXPECT_NE(Term::Literal("x"), Term::LangLiteral("x", "en"));
  EXPECT_NE(Term::LangLiteral("x", "en"), Term::LangLiteral("x", "fr"));
  EXPECT_NE(Term::TypedLiteral("x", "dt1"), Term::TypedLiteral("x", "dt2"));
}

// ---------------------------------------------------------------------
// Dictionary
// ---------------------------------------------------------------------

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.Intern(Term::Iri("http://a"));
  TermId b = dict.Intern(Term::Iri("http://b"));
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern(Term::Iri("http://a")), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, LookupAndDecode) {
  Dictionary dict;
  Term t = Term::LangLiteral("hi", "en");
  TermId id = dict.Intern(t);
  EXPECT_EQ(dict.Lookup(t), id);
  EXPECT_EQ(dict.term(id), t);
  EXPECT_EQ(dict.Lookup(Term::Literal("hi")), kInvalidTermId);
}

TEST(DictionaryTest, MemoryUsageGrows) {
  Dictionary dict;
  size_t before = dict.MemoryUsageBytes();
  for (int i = 0; i < 100; ++i) {
    dict.Intern(Term::Iri("http://example.org/resource/" +
                          std::to_string(i)));
  }
  EXPECT_GT(dict.MemoryUsageBytes(), before);
}

// ---------------------------------------------------------------------
// N-Triples
// ---------------------------------------------------------------------

TEST(NTriplesTest, ParsesBasicLine) {
  TermTriple triple;
  bool has = false;
  ASSERT_TRUE(ParseNTriplesLine(
                  "<http://s> <http://p> \"o\"@en .", &triple, &has)
                  .ok());
  ASSERT_TRUE(has);
  EXPECT_EQ(triple.subject, rdf::Term::Iri("http://s"));
  EXPECT_EQ(triple.object, rdf::Term::LangLiteral("o", "en"));
}

TEST(NTriplesTest, SkipsCommentsAndBlanks) {
  auto result = ParseNTriples("# comment\n\n<http://s> <http://p> <http://o> .\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(NTriplesTest, RejectsMalformedLines) {
  TermTriple t;
  bool has;
  EXPECT_FALSE(ParseNTriplesLine("<http://s> <http://p> .", &t, &has).ok());
  EXPECT_FALSE(
      ParseNTriplesLine("<http://s> \"litpred\" <http://o> .", &t, &has).ok());
  EXPECT_FALSE(
      ParseNTriplesLine("<http://s> <http://p> <http://o>", &t, &has).ok());
}

TEST(NTriplesTest, WriteParseRoundTrip) {
  std::vector<TermTriple> triples = {
      {Term::Iri("http://s1"), Term::Iri("http://p"),
       Term::Literal("v w\n\"x\"")},
      {Term::BlankNode("b"), Term::Iri("http://p2"), Term::Integer(9)},
      {Term::Iri("http://s2"), Term::Iri("http://p"),
       Term::LangLiteral("y", "en-GB")},
  };
  auto parsed = ParseNTriples(WriteNTriples(triples));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), triples.size());
  for (size_t i = 0; i < triples.size(); ++i) {
    EXPECT_EQ((*parsed)[i], triples[i]) << i;
  }
}

}  // namespace
}  // namespace lusail::rdf
