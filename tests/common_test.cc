#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace lusail {
namespace {

// ---------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kParseError, StatusCode::kTimeout,
        StatusCode::kUnsupported, StatusCode::kInternal,
        StatusCode::kUnavailable}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, UnavailableFactoryAndRetryability) {
  Status s = Status::Unavailable("endpoint down");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "Unavailable: endpoint down");
  EXPECT_TRUE(s.IsRetryable());
  EXPECT_TRUE(Status::Timeout("late").IsRetryable());
  // Deterministic failures must never be retried.
  EXPECT_FALSE(Status::Internal("bug").IsRetryable());
  EXPECT_FALSE(Status::ParseError("bad").IsRetryable());
  EXPECT_FALSE(Status().IsRetryable());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Doubled(Result<int> in) {
  LUSAIL_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Internal("x")).ok());
}

// ---------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_FALSE(StartsWith("hi", "hello"));
  EXPECT_TRUE(EndsWith("hello world", "world"));
  EXPECT_FALSE(EndsWith("d", "world"));
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, EscapeRoundTrip) {
  std::string nasty = "line1\nline2\t\"quoted\"\\back";
  EXPECT_EQ(UnescapeLiteral(EscapeLiteral(nasty)), nasty);
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.5 MiB");
}

// ---------------------------------------------------------------------
// Thread pool (the Elastic Request Handler)
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.Submit([](int a, int b) { return a + b; }, 20, 22);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ManyConcurrentBlockingTasksComplete) {
  // More tasks than threads, each briefly blocking: no deadlock.
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(pool.Submit([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return i;
    }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 29 * 30 / 2);
}

TEST(ThreadPoolTest, DefaultHasAtLeastEightThreads) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 8u);
}

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(99);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// ---------------------------------------------------------------------
// Stopwatch / Deadline
// ---------------------------------------------------------------------

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  double ms = sw.ElapsedMillis();
  EXPECT_GE(ms, 10.0);
  EXPECT_LT(ms, 5000.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMillis(), 10.0);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.has_deadline());
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ExpiresAfterDuration) {
  Deadline d = Deadline::AfterMillis(5);
  EXPECT_TRUE(d.has_deadline());
  EXPECT_FALSE(d.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, RemainingMillis) {
  Deadline infinite;
  EXPECT_TRUE(std::isinf(infinite.RemainingMillis()));
  Deadline d = Deadline::AfterMillis(200);
  double remaining = d.RemainingMillis();
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 200.0);
  Deadline expired = Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(expired.RemainingMillis(), 0.0);  // Clamped, never negative.
}

}  // namespace
}  // namespace lusail
