#include "sparql/parser.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sparql/result_table.h"
#include "sparql/serializer.h"

namespace lusail::sparql {
namespace {

Query MustParse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString() << "\n" << text;
  return q.ok() ? *q : Query{};
}

TEST(ParserTest, BasicSelect) {
  Query q = MustParse(
      "SELECT ?s ?o WHERE { ?s <http://p> ?o . }");
  EXPECT_EQ(q.form, QueryForm::kSelect);
  ASSERT_EQ(q.projection.size(), 2u);
  EXPECT_EQ(q.projection[0].name, "s");
  ASSERT_EQ(q.where.triples.size(), 1u);
  EXPECT_TRUE(q.where.triples[0].s.is_variable());
  EXPECT_EQ(q.where.triples[0].p.term().lexical(), "http://p");
}

TEST(ParserTest, PrefixResolution) {
  Query q = MustParse(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?x WHERE { ?x ex:knows ex:bob . }");
  EXPECT_EQ(q.where.triples[0].p.term().lexical(),
            "http://example.org/knows");
  EXPECT_EQ(q.where.triples[0].o.term().lexical(), "http://example.org/bob");
}

TEST(ParserTest, UndeclaredPrefixFails) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ex:p ?y . }").ok());
}

TEST(ParserTest, RdfTypeShorthand) {
  Query q = MustParse("SELECT ?x WHERE { ?x a <http://C> . }");
  EXPECT_EQ(q.where.triples[0].p.term().lexical(), rdf::kRdfType);
}

TEST(ParserTest, PredicateObjectLists) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://p> ?a , ?b ; <http://q> ?c . }");
  ASSERT_EQ(q.where.triples.size(), 3u);
  // All three share the subject ?x.
  for (const TriplePattern& tp : q.where.triples) {
    EXPECT_EQ(tp.s.var().name, "x");
  }
  EXPECT_EQ(q.where.triples[2].p.term().lexical(), "http://q");
}

TEST(ParserTest, SelectStar) {
  Query q = MustParse("SELECT * WHERE { ?s ?p ?o . }");
  EXPECT_TRUE(q.select_all);
  auto proj = q.EffectiveProjection();
  EXPECT_EQ(proj.size(), 3u);
}

TEST(ParserTest, AskForm) {
  Query q = MustParse("ASK { ?s <http://p> ?o . }");
  EXPECT_EQ(q.form, QueryForm::kAsk);
}

TEST(ParserTest, DistinctLimitOffset) {
  Query q = MustParse(
      "SELECT DISTINCT ?s WHERE { ?s ?p ?o . } LIMIT 10 OFFSET 5");
  EXPECT_TRUE(q.distinct);
  EXPECT_EQ(q.limit, 10u);
  EXPECT_EQ(q.offset, 5u);
}

TEST(ParserTest, CountStar) {
  Query q = MustParse(
      "SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(q.aggregate.has_value());
  EXPECT_FALSE(q.aggregate->var.has_value());
  EXPECT_EQ(q.aggregate->alias.name, "c");
}

TEST(ParserTest, CountDistinctVar) {
  Query q = MustParse(
      "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(q.aggregate.has_value());
  EXPECT_TRUE(q.aggregate->distinct);
  EXPECT_EQ(q.aggregate->var->name, "s");
}

TEST(ParserTest, FilterComparison) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://age> ?a . FILTER (?a >= 18 && ?a < 65) }");
  ASSERT_EQ(q.where.filters.size(), 1u);
  EXPECT_EQ(q.where.filters[0].op, ExprOp::kAnd);
}

TEST(ParserTest, FilterFunctions) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://name> ?n . "
      "FILTER (CONTAINS(?n, \"ali\") || STRSTARTS(STR(?x), \"http\")) }");
  EXPECT_EQ(q.where.filters[0].op, ExprOp::kOr);
}

TEST(ParserTest, FilterNotExists) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://p> ?y . "
      "FILTER NOT EXISTS { ?y <http://q> ?z . } }");
  ASSERT_EQ(q.where.exists_filters.size(), 1u);
  EXPECT_TRUE(q.where.exists_filters[0].negated);
  EXPECT_EQ(q.where.exists_filters[0].pattern.triples.size(), 1u);
}

TEST(ParserTest, FilterNotExistsWithNestedSelect) {
  // The exact shape of Lusail's Figure 5 check queries.
  Query q = MustParse(
      "SELECT ?P WHERE { ?P a <http://T> . ?S <http://pi> ?P . "
      "FILTER NOT EXISTS { SELECT ?P WHERE { ?P <http://pj> ?C . } } } "
      "LIMIT 1");
  ASSERT_EQ(q.where.exists_filters.size(), 1u);
  EXPECT_EQ(q.where.exists_filters[0].pattern.triples.size(), 1u);
  EXPECT_EQ(q.limit, 1u);
}

TEST(ParserTest, OptionalBlock) {
  Query q = MustParse(
      "SELECT ?x ?e WHERE { ?x <http://p> ?y . "
      "OPTIONAL { ?x <http://email> ?e . } }");
  ASSERT_EQ(q.where.optionals.size(), 1u);
}

TEST(ParserTest, UnionChain) {
  Query q = MustParse(
      "SELECT ?x WHERE { { ?x <http://a> ?y . } UNION { ?x <http://b> ?y . } "
      "UNION { ?x <http://c> ?y . } }");
  ASSERT_EQ(q.where.unions.size(), 1u);
  EXPECT_EQ(q.where.unions[0].size(), 3u);
}

TEST(ParserTest, PlainNestedGroupFlattens) {
  Query q = MustParse(
      "SELECT ?x WHERE { { ?x <http://a> ?y . ?y <http://b> ?z . } }");
  EXPECT_EQ(q.where.triples.size(), 2u);
  EXPECT_TRUE(q.where.unions.empty());
}

TEST(ParserTest, ValuesSingleVar) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://p> ?y . "
      "VALUES ?y { <http://v1> \"v2\" UNDEF } }");
  ASSERT_EQ(q.where.values.size(), 1u);
  EXPECT_EQ(q.where.values[0].rows.size(), 3u);
  EXPECT_FALSE(q.where.values[0].rows[2][0].has_value());
}

TEST(ParserTest, ValuesTupleForm) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://p> ?y . "
      "VALUES (?x ?y) { (<http://a> 1) (<http://b> 2) } }");
  ASSERT_EQ(q.where.values.size(), 1u);
  EXPECT_EQ(q.where.values[0].vars.size(), 2u);
  EXPECT_EQ(q.where.values[0].rows.size(), 2u);
}

TEST(ParserTest, LiteralForms) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://p> \"lit\"@en . "
      "?x <http://q> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> . "
      "?x <http://r> 3.25 . ?x <http://s> true . }");
  EXPECT_EQ(q.where.triples[0].o.term().lang(), "en");
  EXPECT_TRUE(q.where.triples[1].o.term().IsNumeric());
  EXPECT_TRUE(q.where.triples[2].o.term().IsNumeric());
  EXPECT_EQ(q.where.triples[3].o.term().datatype(), rdf::kXsdBoolean);
}

TEST(ParserTest, CommentsAreIgnored) {
  Query q = MustParse(
      "# leading comment\nSELECT ?x # trailing\nWHERE { ?x ?p ?o . }");
  EXPECT_EQ(q.projection.size(), 1u);
}

TEST(ParserTest, ErrorsCarryContext) {
  auto r = ParseQuery("SELECT ?x WHERE { ?x <http://p> }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("DELETE WHERE { ?s ?p ?o }").ok());
  EXPECT_FALSE(ParseQuery("SELECT WHERE { }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ?p ?o . } trailing").ok());
}

// ---------------------------------------------------------------------
// Serializer round-trips (property-style).
// ---------------------------------------------------------------------

class SerializerRoundTripTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(SerializerRoundTripTest, ParseSerializeParseIsStable) {
  Query q1 = MustParse(GetParam());
  std::string text1 = QueryToString(q1);
  auto q2 = ParseQuery(text1);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString() << "\nserialized: " << text1;
  std::string text2 = QueryToString(*q2);
  EXPECT_EQ(text1, text2) << "serialization must reach a fixpoint";
}

INSTANTIATE_TEST_SUITE_P(
    Queries, SerializerRoundTripTest,
    ::testing::Values(
        "SELECT ?s WHERE { ?s <http://p> ?o . }",
        "SELECT DISTINCT ?s ?o WHERE { ?s <http://p> ?o . ?o <http://q> "
        "\"x\"@en . } LIMIT 3 OFFSET 1",
        "ASK { ?s <http://p> \"v\" . }",
        "SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o . }",
        "SELECT ?s WHERE { ?s <http://p> ?o . FILTER (?o > 5 && "
        "CONTAINS(STR(?s), \"x\")) }",
        "SELECT ?s WHERE { ?s <http://p> ?o . OPTIONAL { ?s <http://q> ?r . "
        "} }",
        "SELECT ?s WHERE { { ?s <http://a> ?o . } UNION { ?s <http://b> ?o . "
        "} }",
        "SELECT ?s WHERE { ?s <http://p> ?o . VALUES ?o { 1 2 UNDEF } }",
        "SELECT ?s WHERE { ?s <http://p> ?o . FILTER NOT EXISTS { ?o "
        "<http://q> ?z . } }"));

}  // namespace
}  // namespace lusail::sparql

namespace lusail::sparql {
namespace {

TEST(OrderByTest, ParsesPlainAndDirectedKeys) {
  Query q = *ParseQuery(
      "SELECT ?a ?b WHERE { ?a <http://p> ?b . } ORDER BY ?a DESC(?b) "
      "LIMIT 5");
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_EQ(q.order_by[0].var.name, "a");
  EXPECT_FALSE(q.order_by[0].descending);
  EXPECT_TRUE(q.order_by[1].descending);
  EXPECT_EQ(q.limit, 5u);
}

TEST(OrderByTest, SerializerRoundTrip) {
  Query q = *ParseQuery(
      "SELECT ?a WHERE { ?a <http://p> ?b . } ORDER BY DESC(?a) ?b");
  std::string text = QueryToString(q);
  auto q2 = ParseQuery(text);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString() << "\n" << text;
  ASSERT_EQ(q2->order_by.size(), 2u);
  EXPECT_TRUE(q2->order_by[0].descending);
  EXPECT_EQ(QueryToString(*q2), text);
}

TEST(OrderByTest, EmptyOrderByIsAnError) {
  EXPECT_FALSE(ParseQuery("SELECT ?a WHERE { ?a ?p ?o . } ORDER BY").ok());
}

TEST(ResultTableTsvTest, EscapesControlCharactersInCells) {
  // Regression: terms whose rendered form carries raw tabs or newlines
  // (literal lexicals, IRIs, language tags all pass through ToString)
  // used to be emitted verbatim, shifting every later cell in the row.
  ResultTable table;
  table.vars = {"a", "b"};
  table.rows.push_back({rdf::Term::Literal("tab\there\nnewline"),
                        rdf::Term::Iri("http://ex/odd\tiri")});
  table.rows.push_back({std::nullopt, rdf::Term::Literal("back\\slash")});
  std::string tsv = table.ToTsv();

  // Header + exactly one line per row: embedded newlines are escaped.
  size_t lines = 0;
  for (char c : tsv) lines += c == '\n';
  EXPECT_EQ(lines, 3u) << tsv;
  // Exactly one tab per line: embedded tabs are escaped.
  size_t pos = 0;
  while (pos < tsv.size()) {
    size_t eol = tsv.find('\n', pos);
    std::string line = tsv.substr(pos, eol - pos);
    EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 1) << line;
    pos = eol + 1;
  }
  // Literal lexicals are escaped once by ToString (N-Triples) and the
  // resulting backslashes escaped again for TSV; IRI tabs, which
  // ToString passes through raw, get their escape from TsvEscape.
  EXPECT_NE(tsv.find("tab\\\\there\\\\nnewline"), std::string::npos) << tsv;
  EXPECT_NE(tsv.find("http://ex/odd\\tiri"), std::string::npos) << tsv;
  EXPECT_NE(tsv.find("back\\\\\\\\slash"), std::string::npos) << tsv;
}

}  // namespace
}  // namespace lusail::sparql
