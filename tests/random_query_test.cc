// Property-based fuzzing of the federated pipeline: random conjunctive
// queries over the LUBM vocabulary (random shapes, constants, filters)
// must yield identical results from Lusail, the FedX baseline, and the
// union-graph oracle. This sweeps far more decomposition shapes than the
// hand-written benchmark queries.

#include <set>

#include <gtest/gtest.h>

#include "baselines/fedx_engine.h"
#include "common/rng.h"
#include "core/lusail_engine.h"
#include "sparql/evaluator.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

constexpr const char* kUb = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

const char* kPredicates[] = {
    "advisor",        "teacherOf",     "takesCourse", "memberOf",
    "worksFor",       "PhDDegreeFrom", "subOrganizationOf",
    "undergraduateDegreeFrom", "name", "address",
};
const char* kClasses[] = {
    "GraduateStudent", "UndergraduateStudent", "FullProfessor",
    "AssociateProfessor", "GraduateCourse", "Department", "University",
};

/// Generates a random connected conjunctive query of 2-5 patterns.
std::string RandomQuery(Rng* rng) {
  int num_patterns = 2 + static_cast<int>(rng->NextBelow(4));
  int num_vars = 2 + static_cast<int>(rng->NextBelow(3));
  auto var = [&](int i) { return "?v" + std::to_string(i); };

  std::string body;
  int previous_var = 0;
  for (int i = 0; i < num_patterns; ++i) {
    // Chain-ish structure: reuse a previous variable as subject so the
    // query graph stays connected.
    int s = (i == 0) ? 0 : previous_var;
    int o = static_cast<int>(rng->NextBelow(num_vars));
    if (rng->NextBool(0.3)) {
      // Type pattern.
      body += var(s) + " <" + std::string(rdf::kRdfType) + "> <" + kUb +
              std::string(kClasses[rng->NextBelow(7)]) + "> .\n";
    } else {
      body += var(s) + " <" + kUb +
              std::string(kPredicates[rng->NextBelow(10)]) + "> " + var(o) +
              " .\n";
      previous_var = o;
    }
  }
  if (rng->NextBool(0.3)) {
    body += "FILTER (isIRI(?v0) || BOUND(?v1))\n";
  }
  std::string projection;
  for (int i = 0; i < num_vars; ++i) projection += var(i) + " ";
  return "SELECT " + projection + "WHERE {\n" + body + "}";
}

std::multiset<std::string> RowBag(const sparql::ResultTable& table) {
  std::vector<size_t> order(table.vars.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return table.vars[a] < table.vars[b];
  });
  std::multiset<std::string> rows;
  for (const auto& row : table.rows) {
    std::string line;
    for (size_t i : order) {
      line += table.vars[i] + "=" +
              (row[i].has_value() ? row[i]->ToString() : "UNDEF") + "|";
    }
    rows.insert(line);
  }
  return rows;
}

class RandomQueryTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    workload::LubmConfig config = workload::LubmConfig::Small();
    config.num_universities = 3;
    workload::LubmGenerator generator(config);
    specs_ = new std::vector<workload::EndpointSpec>(generator.GenerateAll());
    federation_ =
        workload::BuildFederation(*specs_, net::LatencyModel::None()).release();
    oracle_store_ = new store::TripleStore();
    for (const auto& spec : *specs_) {
      for (const rdf::TermTriple& t : spec.triples) oracle_store_->Add(t);
    }
    oracle_store_->Freeze();
    lusail_ = new core::LusailEngine(federation_);
    fedx_ = new baselines::FedXEngine(federation_);
  }

  static void TearDownTestSuite() {
    delete lusail_;
    delete fedx_;
    delete oracle_store_;
    delete federation_;
    delete specs_;
  }

  static std::vector<workload::EndpointSpec>* specs_;
  static fed::Federation* federation_;
  static store::TripleStore* oracle_store_;
  static core::LusailEngine* lusail_;
  static baselines::FedXEngine* fedx_;
};

std::vector<workload::EndpointSpec>* RandomQueryTest::specs_ = nullptr;
fed::Federation* RandomQueryTest::federation_ = nullptr;
store::TripleStore* RandomQueryTest::oracle_store_ = nullptr;
core::LusailEngine* RandomQueryTest::lusail_ = nullptr;
baselines::FedXEngine* RandomQueryTest::fedx_ = nullptr;

TEST_P(RandomQueryTest, EnginesAgreeWithOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  std::string query_text = RandomQuery(&rng);

  auto parsed = sparql::ParseQuery(query_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n"
                           << query_text;
  sparql::Evaluator oracle(oracle_store_);
  auto expected = oracle.Execute(*parsed);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  auto lusail_result = lusail_->Execute(query_text);
  ASSERT_TRUE(lusail_result.ok())
      << lusail_result.status().ToString() << "\n" << query_text;
  EXPECT_EQ(RowBag(lusail_result->table), RowBag(*expected))
      << "Lusail mismatch on:\n" << query_text;

  auto fedx_result = fedx_->Execute(query_text);
  ASSERT_TRUE(fedx_result.ok())
      << fedx_result.status().ToString() << "\n" << query_text;
  EXPECT_EQ(RowBag(fedx_result->table), RowBag(*expected))
      << "FedX mismatch on:\n" << query_text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace lusail
