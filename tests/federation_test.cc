#include "federation/federation.h"

#include <future>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

#include "federation/binding_table.h"
#include "federation/source_selection.h"
#include "net/sparql_endpoint.h"
#include "workload/federation_builder.h"

namespace lusail::fed {
namespace {

using rdf::Term;
using rdf::TermId;
using workload::EndpointSpec;

// ---------------------------------------------------------------------
// BindingTable operations
// ---------------------------------------------------------------------

class BindingTableTest : public ::testing::Test {
 protected:
  TermId Id(const std::string& iri) {
    return dict_.Intern(Term::Iri(iri));
  }

  BindingTable Make(const std::vector<std::string>& vars,
                    const std::vector<std::vector<std::string>>& rows) {
    BindingTable t;
    t.vars = vars;
    for (const auto& row : rows) {
      std::vector<TermId> ids;
      for (const std::string& cell : row) {
        ids.push_back(cell.empty() ? rdf::kInvalidTermId : Id(cell));
      }
      t.AppendRow(ids);
    }
    return t;
  }

  SharedDictionary dict_;
};

TEST_F(BindingTableTest, HashJoinOnSharedVar) {
  BindingTable left = Make({"x", "y"}, {{"a", "b"}, {"c", "d"}});
  BindingTable right = Make({"y", "z"}, {{"b", "e"}, {"b", "f"}, {"q", "g"}});
  BindingTable joined = HashJoin(left, right);
  EXPECT_EQ(joined.NumRows(), 2u);  // (a,b,e), (a,b,f).
  EXPECT_EQ(joined.vars.size(), 3u);
}

TEST_F(BindingTableTest, HashJoinNoSharedVarsIsCartesian) {
  BindingTable left = Make({"x"}, {{"a"}, {"b"}});
  BindingTable right = Make({"y"}, {{"c"}, {"d"}, {"e"}});
  EXPECT_EQ(HashJoin(left, right).NumRows(), 6u);
}

TEST_F(BindingTableTest, HashJoinUnboundIsCompatible) {
  BindingTable left = Make({"x", "y"}, {{"a", ""}});
  BindingTable right = Make({"y", "z"}, {{"b", "c"}});
  BindingTable joined = HashJoin(left, right);
  ASSERT_EQ(joined.NumRows(), 1u);
  // The unbound ?y picks up the right-side value.
  int y = joined.VarIndex("y");
  EXPECT_EQ(joined.At(0, static_cast<size_t>(y)), Id("b"));
}

TEST_F(BindingTableTest, LeftOuterJoinPadsMisses) {
  BindingTable left = Make({"x", "y"}, {{"a", "b"}, {"c", "nomatch"}});
  BindingTable right = Make({"y", "z"}, {{"b", "e"}});
  BindingTable joined = LeftOuterJoin(left, right);
  ASSERT_EQ(joined.NumRows(), 2u);
  int z = joined.VarIndex("z");
  int matched = 0;
  for (TermId id : joined.Column(static_cast<size_t>(z))) {
    if (id != rdf::kInvalidTermId) ++matched;
  }
  EXPECT_EQ(matched, 1);
}

TEST_F(BindingTableTest, AppendUnionAlignsColumns) {
  BindingTable a = Make({"x", "y"}, {{"a", "b"}});
  BindingTable b = Make({"y", "z"}, {{"c", "d"}});
  AppendUnion(&a, b);
  ASSERT_EQ(a.NumRows(), 2u);
  EXPECT_EQ(a.vars.size(), 3u);
  int x = a.VarIndex("x"), z = a.VarIndex("z");
  EXPECT_EQ(a.At(1, static_cast<size_t>(x)), rdf::kInvalidTermId);
  EXPECT_EQ(a.At(0, static_cast<size_t>(z)), rdf::kInvalidTermId);
  EXPECT_EQ(a.At(1, static_cast<size_t>(z)), Id("d"));
}

TEST_F(BindingTableTest, AppendUnionIntoEmpty) {
  BindingTable empty;
  BindingTable b = Make({"x"}, {{"a"}});
  AppendUnion(&empty, b);
  EXPECT_EQ(empty.NumRows(), 1u);
  EXPECT_EQ(empty.vars, b.vars);
}

TEST_F(BindingTableTest, ProjectAndDistinct) {
  BindingTable t = Make({"x", "y"}, {{"a", "b"}, {"a", "c"}, {"a", "b"}});
  BindingTable all = Project(t, {"x"}, /*distinct=*/false);
  EXPECT_EQ(all.NumRows(), 3u);
  BindingTable dedup = Project(t, {"x"}, /*distinct=*/true);
  EXPECT_EQ(dedup.NumRows(), 1u);
  BindingTable missing = Project(t, {"x", "w"}, false);
  EXPECT_EQ(missing.vars.size(), 2u);
  EXPECT_EQ(missing.At(0, 1), rdf::kInvalidTermId);
}

TEST_F(BindingTableTest, FilterRowsDecodesTerms) {
  BindingTable t;
  t.vars = {"n"};
  t.AppendRow({dict_.Intern(Term::Integer(5))});
  t.AppendRow({dict_.Intern(Term::Integer(15))});
  sparql::Expr filter = sparql::Expr::Binary(
      sparql::ExprOp::kGt, sparql::Expr::Var("n"),
      sparql::Expr::Const(Term::Integer(10)));
  FilterRows(&t, filter, dict_);
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(dict_.term(t.At(0, 0)).lexical(), "15");
}

TEST_F(BindingTableTest, InternAndDecodeRoundTrip) {
  sparql::ResultTable rt;
  rt.vars = {"a", "b"};
  rt.rows.push_back({Term::Iri("http://x"), std::nullopt});
  BindingTable bt = InternTable(rt, &dict_);
  ASSERT_EQ(bt.NumRows(), 1u);
  EXPECT_EQ(bt.At(0, 1), rdf::kInvalidTermId);
  sparql::ResultTable back = DecodeTable(bt, dict_);
  EXPECT_EQ(back.rows[0][0], Term::Iri("http://x"));
  EXPECT_FALSE(back.rows[0][1].has_value());
}

TEST(SharedDictionaryTest, ConcurrentInterningIsConsistent) {
  SharedDictionary dict;
  ThreadPool pool(8);
  std::vector<std::future<TermId>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&dict, i] {
      return dict.Intern(Term::Iri("http://x/" + std::to_string(i % 10)));
    }));
  }
  std::set<TermId> ids;
  for (auto& f : futures) ids.insert(f.get());
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(dict.size(), 10u);
}

// ---------------------------------------------------------------------
// Federation + source selection
// ---------------------------------------------------------------------

class SourceSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<EndpointSpec> specs(2);
    specs[0].id = "ep0";
    specs[0].triples = {{Term::Iri("http://a"), Term::Iri("http://p"),
                         Term::Iri("http://b")}};
    specs[1].id = "ep1";
    specs[1].triples = {{Term::Iri("http://c"), Term::Iri("http://q"),
                         Term::Iri("http://d")},
                        {Term::Iri("http://c"), Term::Iri("http://p"),
                         Term::Iri("http://d")}};
    federation_ = workload::BuildFederation(specs, net::LatencyModel::None());
  }

  sparql::TriplePattern Pattern(const std::string& pred) {
    return sparql::TriplePattern{sparql::Variable{"s"},
                                 rdf::Term::Iri(pred),
                                 sparql::Variable{"o"}};
  }

  std::unique_ptr<Federation> federation_;
  AskCache cache_;
  ThreadPool pool_{4};
};

TEST_F(SourceSelectionTest, FindsRelevantEndpoints) {
  SourceSelector selector(federation_.get(), &cache_, &pool_);
  MetricsCollector metrics;
  auto sources = selector.SelectSources(
      {Pattern("http://p"), Pattern("http://q"), Pattern("http://nope")},
      &metrics, Deadline(), /*use_cache=*/true);
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ((*sources)[0], (std::vector<int>{0, 1}));
  EXPECT_EQ((*sources)[1], (std::vector<int>{1}));
  EXPECT_TRUE((*sources)[2].empty());
  ExecutionProfile profile;
  metrics.FillCounters(&profile);
  EXPECT_EQ(profile.requests, 6u);  // 3 patterns x 2 endpoints.
  EXPECT_EQ(profile.ask_requests, 6u);
}

TEST_F(SourceSelectionTest, CacheSuppressesRepeatProbes) {
  SourceSelector selector(federation_.get(), &cache_, &pool_);
  MetricsCollector m1, m2;
  ASSERT_TRUE(selector
                  .SelectSources({Pattern("http://p")}, &m1, Deadline(), true)
                  .ok());
  ASSERT_TRUE(selector
                  .SelectSources({Pattern("http://p")}, &m2, Deadline(), true)
                  .ok());
  ExecutionProfile p2;
  m2.FillCounters(&p2);
  EXPECT_EQ(p2.requests, 0u) << "second run must be served from cache";
  EXPECT_EQ(cache_.size(), 2u);
}

TEST_F(SourceSelectionTest, CacheKeyErasesVariableNames) {
  sparql::TriplePattern a{sparql::Variable{"x"}, rdf::Term::Iri("http://p"),
                          sparql::Variable{"y"}};
  sparql::TriplePattern b{sparql::Variable{"s"}, rdf::Term::Iri("http://p"),
                          sparql::Variable{"o"}};
  EXPECT_EQ(PatternCacheKey(a, "ep"), PatternCacheKey(b, "ep"));
  sparql::TriplePattern c{rdf::Term::Iri("http://subj"),
                          rdf::Term::Iri("http://p"), sparql::Variable{"o"}};
  EXPECT_NE(PatternCacheKey(a, "ep"), PatternCacheKey(c, "ep"));
}

TEST_F(SourceSelectionTest, DeadlineExpiryYieldsTimeout) {
  SourceSelector selector(federation_.get(), &cache_, &pool_);
  MetricsCollector metrics;
  Deadline expired = Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto sources = selector.SelectSources({Pattern("http://p")}, &metrics,
                                        expired, /*use_cache=*/false);
  ASSERT_FALSE(sources.ok());
  EXPECT_EQ(sources.status().code(), StatusCode::kTimeout);
}

TEST_F(SourceSelectionTest, FederationExecuteValidatesIndex) {
  MetricsCollector metrics;
  auto result = federation_->Execute(99, "ASK { ?s ?p ?o . }", &metrics,
                                     Deadline());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------
// ASK-query detection (request accounting)
// ---------------------------------------------------------------------

TEST(LooksLikeAskQueryTest, TolerantOfWhitespaceCommentsAndPrefixes) {
  EXPECT_TRUE(LooksLikeAskQuery("ASK { ?s ?p ?o . }"));
  EXPECT_TRUE(LooksLikeAskQuery("  \n\t ASK { ?s ?p ?o . }"));
  EXPECT_TRUE(LooksLikeAskQuery("ask { ?s ?p ?o . }"));
  EXPECT_TRUE(LooksLikeAskQuery("# probe\nASK { ?s ?p ?o . }"));
  EXPECT_TRUE(LooksLikeAskQuery(
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "ASK { ?s ub:name ?o . }"));
  EXPECT_TRUE(LooksLikeAskQuery(
      "BASE <http://ex/>\nPREFIX p: <http://ex/p#>\nASK { ?s p:q ?o . }"));

  EXPECT_FALSE(LooksLikeAskQuery("SELECT ?s WHERE { ?s ?p ?o . }"));
  EXPECT_FALSE(LooksLikeAskQuery(
      "PREFIX p: <http://ex/>\nSELECT ?s WHERE { ?s p:q ?o . }"));
  // A query merely *containing* the word ASK is not an ASK query.
  EXPECT_FALSE(LooksLikeAskQuery(
      "SELECT ?s WHERE { ?s <http://ex/ASK> ?o . }"));
  EXPECT_FALSE(LooksLikeAskQuery(""));
  EXPECT_FALSE(LooksLikeAskQuery("   "));
  EXPECT_FALSE(LooksLikeAskQuery("{ ?s ?p ?o }"));
}

TEST_F(SourceSelectionTest, PrefixedAskCountsAsAskRequest) {
  MetricsCollector metrics;
  auto result = federation_->Execute(
      0, "# source probe\nASK { ?s <http://p> ?o . }", &metrics, Deadline());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExecutionProfile profile;
  metrics.FillCounters(&profile);
  EXPECT_EQ(profile.requests, 1u);
  EXPECT_EQ(profile.ask_requests, 1u);
}

}  // namespace
}  // namespace lusail::fed
