// Unit tests for the SAPE execution machinery: the cost model (Chauvenet
// outlier rejection, delay thresholds, cardinality estimation), the DP
// join-order optimizer, and the parallel hash join.

#include <cmath>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/hash_join.h"
#include "core/join_optimizer.h"
#include "sparql/parser.h"
#include "workload/federation_builder.h"
#include "workload/qfed_generator.h"

namespace lusail::core {
namespace {

// ---------------------------------------------------------------------
// Chauvenet + delay decisions
// ---------------------------------------------------------------------

TEST(ChauvenetTest, NoOutliersInUniformData) {
  std::vector<double> xs = {10, 11, 9, 10, 12, 10, 11};
  auto flags = ChauvenetOutliers(xs);
  for (bool f : flags) EXPECT_FALSE(f);
}

TEST(ChauvenetTest, ExtremeValueIsRejected) {
  std::vector<double> xs = {10, 11, 9, 10, 12, 1000000};
  auto flags = ChauvenetOutliers(xs);
  EXPECT_TRUE(flags.back());
  for (size_t i = 0; i + 1 < xs.size(); ++i) EXPECT_FALSE(flags[i]);
}

TEST(ChauvenetTest, TinySamplesAreNeverRejected) {
  EXPECT_FALSE(ChauvenetOutliers({1, 1000000})[1]);
  EXPECT_TRUE(ChauvenetOutliers({}).empty());
}

TEST(DelayDecisionTest, SingleSubqueryNeverDelayed) {
  auto delayed = DecideDelayed({1e9}, {100}, DelayThreshold::kMu);
  EXPECT_FALSE(delayed[0]);
}

TEST(DelayDecisionTest, LargeCardinalityIsDelayed) {
  std::vector<double> cards = {10, 10, 10, 100000};
  std::vector<double> eps = {2, 2, 2, 2};
  auto delayed = DecideDelayed(cards, eps, DelayThreshold::kMuSigma);
  EXPECT_FALSE(delayed[0]);
  EXPECT_FALSE(delayed[1]);
  EXPECT_FALSE(delayed[2]);
  EXPECT_TRUE(delayed[3]);
}

TEST(DelayDecisionTest, ManyEndpointsAloneTriggersDelay) {
  std::vector<double> cards = {10, 10, 10, 10};
  std::vector<double> eps = {2, 2, 2, 200};
  auto delayed = DecideDelayed(cards, eps, DelayThreshold::kMuSigma);
  EXPECT_TRUE(delayed[3]);
}

TEST(DelayDecisionTest, ThresholdsAreMonotonic) {
  // Looser thresholds (higher k) must delay a subset of what tighter
  // thresholds delay.
  std::vector<double> cards = {5, 8, 20, 60, 300};
  std::vector<double> eps = {1, 1, 1, 1, 1};
  auto mu = DecideDelayed(cards, eps, DelayThreshold::kMu);
  auto mu_sigma = DecideDelayed(cards, eps, DelayThreshold::kMuSigma);
  auto mu_2sigma = DecideDelayed(cards, eps, DelayThreshold::kMu2Sigma);
  for (size_t i = 0; i < cards.size(); ++i) {
    if (mu_2sigma[i]) EXPECT_TRUE(mu_sigma[i]) << i;
    if (mu_sigma[i]) EXPECT_TRUE(mu[i]) << i;
  }
}

TEST(DelayDecisionTest, AtLeastOneNonDelayedSurvives) {
  // Identical large values: whatever the threshold does, at least one
  // subquery must run in the concurrent phase.
  std::vector<double> cards = {1000, 1000, 1000};
  std::vector<double> eps = {50, 50, 50};
  for (DelayThreshold t :
       {DelayThreshold::kMu, DelayThreshold::kMuSigma,
        DelayThreshold::kMu2Sigma, DelayThreshold::kOutliersOnly}) {
    auto delayed = DecideDelayed(cards, eps, t);
    EXPECT_NE(std::count(delayed.begin(), delayed.end(), false), 0);
  }
}

// ---------------------------------------------------------------------
// Cost model statistics (against a live mini-federation)
// ---------------------------------------------------------------------

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::QFedGenerator gen(workload::QFedConfig::Small());
    specs_ = gen.GenerateAll();
    federation_ =
        workload::BuildFederation(specs_, net::LatencyModel::None());
  }

  std::vector<workload::EndpointSpec> specs_;
  std::unique_ptr<fed::Federation> federation_;
  ThreadPool pool_{4};
};

TEST_F(CostModelTest, CountsAreExact) {
  auto q = sparql::ParseQuery(
      "PREFIX db: <http://drugbank.example.org/vocab#>\n"
      "SELECT * WHERE { ?d db:name ?n . }");
  ASSERT_TRUE(q.ok());
  CostModel model(federation_.get(), &pool_);
  fed::MetricsCollector metrics;
  // drugbank is endpoint 0.
  ASSERT_TRUE(model
                  .CollectStatistics(q->where.triples, {{0}}, {}, &metrics,
                                     Deadline())
                  .ok());
  workload::QFedConfig cfg = workload::QFedConfig::Small();
  EXPECT_EQ(model.PatternCount(0, 0),
            static_cast<uint64_t>(cfg.num_drugs));
  EXPECT_EQ(model.PatternTotal(0), static_cast<uint64_t>(cfg.num_drugs));
}

TEST_F(CostModelTest, FilterPushdownTightensCounts) {
  auto q = sparql::ParseQuery(
      "PREFIX db: <http://drugbank.example.org/vocab#>\n"
      "SELECT * WHERE { ?d db:name ?n . FILTER (CONTAINS(?n, \"amide\")) }");
  ASSERT_TRUE(q.ok());
  CostModel with_filter(federation_.get(), &pool_);
  CostModel without(federation_.get(), &pool_);
  fed::MetricsCollector metrics;
  ASSERT_TRUE(with_filter
                  .CollectStatistics(q->where.triples, {{0}},
                                     q->where.filters, &metrics, Deadline())
                  .ok());
  ASSERT_TRUE(without
                  .CollectStatistics(q->where.triples, {{0}}, {}, &metrics,
                                     Deadline())
                  .ok());
  EXPECT_LT(with_filter.PatternCount(0, 0), without.PatternCount(0, 0));
  EXPECT_GT(with_filter.PatternCount(0, 0), 0u);
}

TEST_F(CostModelTest, SubqueryCardinalityUsesMinOverJoin) {
  // Two patterns on ?d: counts 150 (name) and 150 (type) at drugbank,
  // joined min per endpoint, summed over endpoints.
  auto q = sparql::ParseQuery(
      "PREFIX db: <http://drugbank.example.org/vocab#>\n"
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "SELECT * WHERE { ?d db:name ?n . ?d db:interactsWith ?x . }");
  ASSERT_TRUE(q.ok());
  CostModel model(federation_.get(), &pool_);
  fed::MetricsCollector metrics;
  ASSERT_TRUE(model
                  .CollectStatistics(q->where.triples, {{0}, {0}}, {},
                                     &metrics, Deadline())
                  .ok());
  Subquery sq;
  sq.triple_indices = {0, 1};
  sq.sources = {0};
  sq.projection = {"d"};
  double card = model.SubqueryCardinality(sq, q->where.triples);
  EXPECT_DOUBLE_EQ(card,
                   std::min(static_cast<double>(model.PatternCount(0, 0)),
                            static_cast<double>(model.PatternCount(1, 0))));
}

TEST_F(CostModelTest, CountQueryTextShape) {
  auto q = sparql::ParseQuery("SELECT * WHERE { ?s <http://p> ?o . }");
  std::string text = CostModel::CountQueryText(q->where.triples[0], {});
  EXPECT_NE(text.find("COUNT(*)"), std::string::npos);
  EXPECT_TRUE(sparql::ParseQuery(text).ok());
}

// ---------------------------------------------------------------------
// Join optimizer
// ---------------------------------------------------------------------

TEST(JoinOptimizerTest, SingleAndEmpty) {
  EXPECT_TRUE(JoinOptimizer::OptimalOrder({}, {}, 4).empty());
  EXPECT_EQ(JoinOptimizer::OptimalOrder({10}, {{"x"}}, 4),
            (std::vector<int>{0}));
}

TEST(JoinOptimizerTest, OrderCoversAllRelationsOnce) {
  std::vector<double> sizes = {100, 10, 1000, 50};
  std::vector<std::set<std::string>> vars = {
      {"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}};
  auto order = JoinOptimizer::OptimalOrder(sizes, vars, 4);
  std::set<int> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 4u);
}

TEST(JoinOptimizerTest, PrefersConnectedExpansions) {
  // Relations 0-1 share a var; 2 is disjoint. The cartesian join with 2
  // must come last.
  std::vector<double> sizes = {10, 20, 5};
  std::vector<std::set<std::string>> vars = {{"x"}, {"x"}, {"zzz"}};
  auto order = JoinOptimizer::OptimalOrder(sizes, vars, 4);
  EXPECT_EQ(order.back(), 2);
}

TEST(JoinOptimizerTest, GreedyFallbackBeyondDpLimit) {
  const size_t n = JoinOptimizer::kDpLimit + 3;
  std::vector<double> sizes(n);
  std::vector<std::set<std::string>> vars(n);
  for (size_t i = 0; i < n; ++i) {
    sizes[i] = static_cast<double>(100 * (i + 1));
    vars[i] = {"v" + std::to_string(i), "v" + std::to_string(i + 1)};
  }
  auto order = JoinOptimizer::OptimalOrder(sizes, vars, 4);
  ASSERT_EQ(order.size(), n);
  std::set<int> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), n);
  EXPECT_EQ(order[0], 0) << "greedy starts from the smallest relation";
}

// ---------------------------------------------------------------------
// Parallel hash join
// ---------------------------------------------------------------------

fed::BindingTable BigTable(fed::SharedDictionary* dict, const std::string& var,
                           const std::string& other, int n, int offset) {
  fed::BindingTable t;
  t.vars = {var, other};
  for (int i = 0; i < n; ++i) {
    t.AppendRow({dict->Intern(rdf::Term::Integer(i + offset)),
                 dict->Intern(rdf::Term::Iri("http://r/" + other + "/" +
                                             std::to_string(i)))});
  }
  return t;
}

TEST(ParallelHashJoinTest, MatchesSequentialJoin) {
  fed::SharedDictionary dict;
  ThreadPool pool(4);
  fed::BindingTable left = BigTable(&dict, "k", "l", 3000, 0);
  fed::BindingTable right = BigTable(&dict, "k", "r", 3000, 1500);
  fed::BindingTable parallel = ParallelHashJoin(left, right, &pool, 8);
  fed::BindingTable sequential = fed::HashJoin(left, right);
  EXPECT_EQ(parallel.NumRows(), sequential.NumRows());
  EXPECT_EQ(parallel.NumRows(), 1500u);  // Overlap of the key ranges.
  // Same row multiset regardless of partitioning.
  auto key_of = [](const fed::BindingTable& t) {
    std::multiset<std::vector<rdf::TermId>> keys;
    int k = t.VarIndex("k"), l = t.VarIndex("l"), r = t.VarIndex("r");
    for (size_t row = 0; row < t.NumRows(); ++row) {
      keys.insert({t.At(row, static_cast<size_t>(k)),
                   t.At(row, static_cast<size_t>(l)),
                   t.At(row, static_cast<size_t>(r))});
    }
    return keys;
  };
  EXPECT_EQ(key_of(parallel), key_of(sequential));
}

TEST(ParallelHashJoinTest, SmallInputsFallBack) {
  fed::SharedDictionary dict;
  ThreadPool pool(2);
  fed::BindingTable left = BigTable(&dict, "k", "l", 10, 0);
  fed::BindingTable right = BigTable(&dict, "k", "r", 10, 5);
  fed::BindingTable joined = ParallelHashJoin(left, right, &pool, 8);
  EXPECT_EQ(joined.NumRows(), 5u);
}

TEST(ParallelHashJoinTest, StableColumnOrder) {
  fed::SharedDictionary dict;
  ThreadPool pool(4);
  fed::BindingTable left = BigTable(&dict, "k", "l", 3000, 0);
  fed::BindingTable right = BigTable(&dict, "k", "r", 3000, 0);
  fed::BindingTable joined = ParallelHashJoin(left, right, &pool, 8);
  ASSERT_EQ(joined.vars.size(), 3u);
  EXPECT_EQ(joined.vars[0], "k");
  EXPECT_EQ(joined.vars[1], "l");
  EXPECT_EQ(joined.vars[2], "r");
}

}  // namespace
}  // namespace lusail::core
