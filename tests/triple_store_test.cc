#include "store/triple_store.h"

#include <gtest/gtest.h>

#include "rdf/term.h"

namespace lusail::store {
namespace {

using rdf::Term;
using rdf::TermId;
using rdf::TermTriple;

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small graph: two people, two predicates, shared object.
    Load({{"http://alice", "http://knows", "http://bob"},
          {"http://alice", "http://knows", "http://carol"},
          {"http://bob", "http://knows", "http://carol"},
          {"http://alice", "http://age", "30"},
          {"http://bob", "http://age", "30"}});
  }

  void Load(const std::vector<std::array<std::string, 3>>& rows) {
    for (const auto& row : rows) {
      Term object = row[2][0] == 'h' ? Term::Iri(row[2])
                                     : Term::Literal(row[2]);
      store_.Add(TermTriple{Term::Iri(row[0]), Term::Iri(row[1]), object});
    }
    store_.Freeze();
  }

  TermId Id(const Term& t) const { return store_.dict().Lookup(t); }

  TripleStore store_;
};

TEST_F(TripleStoreTest, SizeAfterFreeze) {
  EXPECT_TRUE(store_.frozen());
  EXPECT_EQ(store_.size(), 5u);
}

TEST_F(TripleStoreTest, AllBoundCombinationsMatch) {
  TermId alice = Id(Term::Iri("http://alice"));
  TermId knows = Id(Term::Iri("http://knows"));
  TermId carol = Id(Term::Iri("http://carol"));
  // (s, p, o) fully bound.
  EXPECT_EQ(store_.Count(alice, knows, carol), 1u);
  // (s, p, ?)
  EXPECT_EQ(store_.Count(alice, knows, std::nullopt), 2u);
  // (s, ?, ?)
  EXPECT_EQ(store_.Count(alice, std::nullopt, std::nullopt), 3u);
  // (?, p, ?)
  EXPECT_EQ(store_.Count(std::nullopt, knows, std::nullopt), 3u);
  // (?, p, o)
  EXPECT_EQ(store_.Count(std::nullopt, knows, carol), 2u);
  // (?, ?, o)
  EXPECT_EQ(store_.Count(std::nullopt, std::nullopt, carol), 2u);
  // (s, ?, o)
  EXPECT_EQ(store_.Count(alice, std::nullopt, carol), 1u);
  // (?, ?, ?)
  EXPECT_EQ(store_.Count(std::nullopt, std::nullopt, std::nullopt), 5u);
}

TEST_F(TripleStoreTest, MatchReturnsActualTriples) {
  TermId alice = Id(Term::Iri("http://alice"));
  auto span = store_.Match(alice, std::nullopt, std::nullopt);
  ASSERT_EQ(span.size(), 3u);
  for (const EncodedTriple& t : span) EXPECT_EQ(t.s, alice);
}

TEST_F(TripleStoreTest, AskFastPath) {
  TermId alice = Id(Term::Iri("http://alice"));
  TermId age = Id(Term::Iri("http://age"));
  EXPECT_TRUE(store_.Ask(alice, age, std::nullopt));
  EXPECT_FALSE(store_.Ask(age, alice, std::nullopt));
}

TEST_F(TripleStoreTest, UnknownIdsMatchNothing) {
  // Ids beyond the dictionary must produce empty ranges, not crashes
  // (the evaluator feeds foreign VALUES bindings through this path).
  TermId bogus = store_.dict().size() + 100;
  EXPECT_EQ(store_.Count(bogus, std::nullopt, std::nullopt), 0u);
  EXPECT_EQ(store_.Count(std::nullopt, bogus, std::nullopt), 0u);
  EXPECT_EQ(store_.Count(std::nullopt, std::nullopt, bogus), 0u);
}

TEST_F(TripleStoreTest, PredicateStats) {
  TermId knows = Id(Term::Iri("http://knows"));
  PredicateStats stats = store_.StatsFor(knows);
  EXPECT_EQ(stats.triples, 3u);
  EXPECT_EQ(stats.distinct_subjects, 2u);  // alice, bob.
  EXPECT_EQ(stats.distinct_objects, 2u);   // bob, carol.
  EXPECT_EQ(store_.StatsFor(99999).triples, 0u);
}

TEST_F(TripleStoreTest, PredicatesListsAll) {
  EXPECT_EQ(store_.Predicates().size(), 2u);
}

TEST(TripleStoreDedupTest, DuplicateTriplesCollapse) {
  TripleStore store;
  TermTriple t{Term::Iri("http://s"), Term::Iri("http://p"),
               Term::Iri("http://o")};
  store.Add(t);
  store.Add(t);
  store.Add(t);
  store.Freeze();
  EXPECT_EQ(store.size(), 1u);
}

TEST(TripleStoreDedupTest, EmptyStoreWorks) {
  TripleStore store;
  store.Freeze();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Count(std::nullopt, std::nullopt, std::nullopt), 0u);
  EXPECT_TRUE(store.Predicates().empty());
}

TEST(TripleStoreLoadTest, LoadNTriples) {
  TripleStore store;
  ASSERT_TRUE(store
                  .LoadNTriples("<http://s> <http://p> \"v\" .\n"
                                "<http://s> <http://p> \"w\" .\n")
                  .ok());
  store.Freeze();
  EXPECT_EQ(store.size(), 2u);
}

TEST(TripleStoreLoadTest, LoadRejectsGarbage) {
  TripleStore store;
  EXPECT_FALSE(store.LoadNTriples("not ntriples at all").ok());
}

TEST(TripleStoreScaleTest, LargeStoreCountsExactly) {
  TripleStore store;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    store.Add(TermTriple{
        Term::Iri("http://s" + std::to_string(i % 100)),
        Term::Iri("http://p" + std::to_string(i % 7)),
        Term::Integer(i)});
  }
  store.Freeze();
  EXPECT_EQ(store.size(), static_cast<size_t>(n));
  uint64_t total = 0;
  for (rdf::TermId p : store.Predicates()) {
    total += store.StatsFor(p).triples;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(n));
  EXPECT_GT(store.MemoryUsageBytes(), static_cast<size_t>(n) * 24);
}

}  // namespace
}  // namespace lusail::store
