// Tests for the replica-group endpoint layer: health-ranked selection,
// transparent failover, hedged requests, breaker integration, crash
// recovery via the source-selection health consult, and the 2-replica
// loopback end-to-end with a mid-query replica kill.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/federation_cache.h"
#include "cache/query_service.h"
#include "core/lusail_engine.h"
#include "net/fault_injection.h"
#include "net/replica.h"
#include "net/resilience.h"
#include "net/sparql_endpoint.h"
#include "rpc/http_server.h"
#include "rpc/http_sparql_endpoint.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

const char kQuery[] = "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }";

std::unique_ptr<store::TripleStore> TinyStore() {
  auto store = std::make_unique<store::TripleStore>();
  for (int i = 0; i < 5; ++i) {
    store->Add(rdf::TermTriple{
        rdf::Term::Iri("http://ex/s" + std::to_string(i)),
        rdf::Term::Iri("http://ex/p"), rdf::Term::Integer(i)});
  }
  store->Freeze();
  return store;
}

std::shared_ptr<net::SparqlEndpoint> PlainReplica(const std::string& id) {
  return std::make_shared<net::SparqlEndpoint>(id, TinyStore(),
                                               net::LatencyModel::None());
}

std::shared_ptr<net::FaultInjectingEndpoint> FaultyReplica(
    const std::string& id, const net::FaultProfile& profile) {
  return std::make_shared<net::FaultInjectingEndpoint>(PlainReplica(id),
                                                       profile);
}

/// Options that make selection deterministic: no background probes, no
/// hedging, requests go to replicas strictly in rank order.
net::ReplicaGroupOptions SequentialOptions() {
  net::ReplicaGroupOptions options;
  options.lazy_probe = false;
  options.hedging_enabled = false;
  return options;
}

/// Order-independent row fingerprints for result comparison.
std::vector<std::string> CanonicalRows(const sparql::ResultTable& table) {
  std::vector<std::string> rows;
  for (const auto& row : table.rows) {
    std::string s;
    for (const auto& cell : row) {
      s += cell.has_value() ? cell->ToString() : "UNDEF";
      s += "\x1f";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ---------------------------------------------------------------------
// Selection and failover
// ---------------------------------------------------------------------

TEST(ReplicaGroupTest, SingleReplicaServesAndStampsServedBy) {
  net::ReplicaGroup group("ep", {PlainReplica("ep#0")}, SequentialOptions());
  auto response = group.Query(kQuery);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->served_by, "ep#0");
  EXPECT_FALSE(response->hedged);
  EXPECT_EQ(response->table.rows.size(), 5u);
  EXPECT_EQ(group.stats().requests, 1u);
  EXPECT_EQ(group.stats().failovers, 0u);
}

TEST(ReplicaGroupTest, EmptyGroupFailsLoudly) {
  net::ReplicaGroup group("ep", {});
  auto response = group.Query(kQuery);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST(ReplicaGroupTest, FailsOverWhenTheServingReplicaCrashes) {
  // Replica 0 dies after its first query, exactly like a killed process.
  net::ReplicaGroup group(
      "ep",
      {FaultyReplica("ep#0", net::FaultProfile::CrashAfter(1)),
       PlainReplica("ep#1")},
      SequentialOptions());

  auto first = group.Query(kQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->served_by, "ep#0");

  auto second = group.Query(kQuery);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->served_by, "ep#1");
  EXPECT_GE(group.stats().failovers, 1u);
  EXPECT_EQ(CanonicalRows(first->table), CanonicalRows(second->table));
}

TEST(ReplicaGroupTest, FreshUnhealthyReplicaIsDeprioritized) {
  net::ReplicaGroup group(
      "ep",
      {FaultyReplica("ep#0", net::FaultProfile::CrashAfter(1)),
       PlainReplica("ep#1")},
      SequentialOptions());
  ASSERT_TRUE(group.Query(kQuery).ok());   // ep#0 serves, then crashes.
  ASSERT_TRUE(group.Query(kQuery).ok());   // Fails over to ep#1.
  uint64_t failovers = group.stats().failovers;

  // ep#0 is now fresh-unhealthy, ep#1 fresh-healthy: the next request
  // must go straight to ep#1 without burning a failover on the corpse.
  auto third = group.Query(kQuery);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->served_by, "ep#1");
  EXPECT_EQ(group.stats().failovers, failovers);
}

TEST(ReplicaGroupTest, AllReplicasExhaustedReportsAggregateError) {
  net::FaultProfile down;
  down.permanently_down = true;
  net::ReplicaGroup group(
      "ep", {FaultyReplica("ep#0", down), FaultyReplica("ep#1", down)},
      SequentialOptions());
  auto response = group.Query(kQuery);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(response.status().message().find("exhausted"), std::string::npos)
      << response.status().ToString();
  EXPECT_GE(group.stats().failovers, 1u);
}

TEST(ReplicaGroupTest, NonRetryableErrorDoesNotFailOver) {
  net::ReplicaGroup group("ep",
                          {PlainReplica("ep#0"), PlainReplica("ep#1")},
                          SequentialOptions());
  auto response = group.Query("THIS IS NOT SPARQL");
  ASSERT_FALSE(response.ok());
  EXPECT_FALSE(response.status().IsRetryable());
  EXPECT_EQ(group.stats().failovers, 0u);
}

TEST(ReplicaGroupTest, CancelledTokenFailsFastWithoutContactingReplicas) {
  net::ReplicaGroup group("ep", {PlainReplica("ep#0")}, SequentialOptions());
  CancelToken token = CancelToken::Cancellable();
  token.Cancel();
  auto response = group.QueryCancellable(kQuery, token);
  EXPECT_FALSE(response.ok());
}

// ---------------------------------------------------------------------
// Lazy probes
// ---------------------------------------------------------------------

TEST(ReplicaGroupTest, LazyProbeRunsOncePerReplica) {
  net::ReplicaGroupOptions options;
  options.hedging_enabled = false;  // Keep selection single-threaded.
  net::ReplicaGroup group("ep",
                          {PlainReplica("ep#0"), PlainReplica("ep#1")},
                          options);
  ASSERT_TRUE(group.Query(kQuery).ok());
  ASSERT_TRUE(group.Query(kQuery).ok());
  // Only the selected replica is probed, and only before its first use.
  EXPECT_EQ(group.stats().probes, 1u);
}

TEST(ReplicaGroupTest, ProbeDiscoversDeadPrimaryBeforeRealTraffic) {
  net::FaultProfile down;
  down.permanently_down = true;
  net::ReplicaGroupOptions options;
  options.hedging_enabled = false;
  net::ReplicaGroup group(
      "ep", {FaultyReplica("ep#0", down), PlainReplica("ep#1")}, options);

  // The probe eats ep#0's failure; the real query lands on ep#1.
  auto response = group.Query(kQuery);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->served_by, "ep#1");
  EXPECT_GE(group.stats().probes, 1u);
}

// ---------------------------------------------------------------------
// Hedged requests
// ---------------------------------------------------------------------

TEST(ReplicaGroupTest, HedgeWinsOverSlowPrimary) {
  net::FaultProfile slow;
  slow.slow_rate = 1.0;
  slow.slow_latency_ms = 150.0;
  net::ReplicaGroupOptions options;
  options.lazy_probe = false;
  options.hedge_delay_ms = 5.0;
  net::ReplicaGroup group(
      "ep", {FaultyReplica("ep#0", slow), PlainReplica("ep#1")}, options);

  auto response =
      group.QueryWithDeadline(kQuery, Deadline::AfterMillis(5000));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->served_by, "ep#1");
  EXPECT_TRUE(response->hedged);
  EXPECT_GE(group.stats().hedges_launched, 1u);
  EXPECT_GE(group.stats().hedge_wins, 1u);
  EXPECT_EQ(response->table.rows.size(), 5u);
}

TEST(ReplicaGroupTest, PrimaryWinStillCountsTheLostHedge) {
  net::FaultProfile mildly_slow;
  mildly_slow.slow_rate = 1.0;
  mildly_slow.slow_latency_ms = 40.0;
  net::FaultProfile very_slow;
  very_slow.slow_rate = 1.0;
  very_slow.slow_latency_ms = 400.0;
  net::ReplicaGroupOptions options;
  options.lazy_probe = false;
  options.hedge_delay_ms = 5.0;
  net::ReplicaGroup group("ep",
                          {FaultyReplica("ep#0", mildly_slow),
                           FaultyReplica("ep#1", very_slow)},
                          options);

  auto response =
      group.QueryWithDeadline(kQuery, Deadline::AfterMillis(5000));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->served_by, "ep#0");
  EXPECT_TRUE(response->hedged);
  EXPECT_GE(group.stats().hedges_launched, 1u);
  EXPECT_GE(group.stats().hedge_losses, 1u);
  EXPECT_EQ(group.stats().hedge_wins, 0u);
}

TEST(ReplicaGroupTest, HedgedPathFailsOverWhenThePrimaryCrashes) {
  net::ReplicaGroupOptions options;
  options.lazy_probe = false;  // The probe would eat the crash budget.
  options.hedge_delay_ms = 50.0;
  net::ReplicaGroup group(
      "ep",
      {FaultyReplica("ep#0", net::FaultProfile::CrashAfter(1)),
       PlainReplica("ep#1")},
      options);
  ASSERT_TRUE(group.Query(kQuery).ok());  // ep#0 serves, then crashes.

  // The crashed primary fails instantly — long before the hedge delay —
  // so the hedged path must fail over rather than wait out the timer.
  auto response =
      group.QueryWithDeadline(kQuery, Deadline::AfterMillis(5000));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->served_by, "ep#1");
  EXPECT_EQ(response->table.rows.size(), 5u);
}

// ---------------------------------------------------------------------
// Circuit breakers and availability
// ---------------------------------------------------------------------

TEST(ReplicaGroupTest, OpenBreakersAreSkippedAndSurfaceInAvailability) {
  net::FaultProfile down;
  down.permanently_down = true;
  net::ReplicaGroupOptions options = SequentialOptions();
  options.breaker_config.window_size = 4;
  options.breaker_config.min_samples = 2;
  options.breaker_config.open_cooldown_ms = 1e9;  // Never half-opens here.
  net::ReplicaGroup group("ep", {FaultyReplica("ep#0", down)}, options);

  EXPECT_TRUE(group.HasAvailableReplica());
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(group.Query(kQuery).ok());
  }
  EXPECT_EQ(group.breaker(0).state(), net::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(group.HasAvailableReplica());

  auto rejected = group.Query(kQuery);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(group.stats().breaker_skips, 1u);
}

TEST(ReplicaGroupTest, StatsJsonCarriesPerReplicaHealth) {
  net::ReplicaGroup group("ep",
                          {PlainReplica("ep#0"), PlainReplica("ep#1")},
                          SequentialOptions());
  ASSERT_TRUE(group.Query(kQuery).ok());

  obs::JsonValue json = group.StatsJson();
  EXPECT_EQ(json.Get("id").AsString(), "ep");
  EXPECT_EQ(json.Get("requests").AsUint(), 1u);
  const obs::JsonValue& replicas = json.Get("replicas");
  ASSERT_EQ(replicas.size(), 2u);
  EXPECT_EQ(replicas[0].Get("id").AsString(), "ep#0");
  EXPECT_EQ(replicas[0].Get("breaker_state").AsString(), "closed");
  EXPECT_EQ(replicas[0].Get("health").AsString(), "healthy");
  EXPECT_EQ(replicas[1].Get("health").AsString(), "unknown");
  EXPECT_GE(replicas[0].Get("latency_count").AsUint(), 1u);
}

TEST(ReplicaGroupTest, HealthVerdictsDecayToStale) {
  net::ReplicaGroupOptions options = SequentialOptions();
  options.health_decay_ms = 30.0;
  net::ReplicaGroup group("ep", {PlainReplica("ep#0")}, options);
  ASSERT_TRUE(group.Query(kQuery).ok());
  EXPECT_EQ(group.StatsJson().Get("replicas")[0].Get("health").AsString(),
            "healthy");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(group.StatsJson().Get("replicas")[0].Get("health").AsString(),
            "healthy (stale)");
}

// ---------------------------------------------------------------------
// Service and source-selection integration
// ---------------------------------------------------------------------

TEST(ReplicaGroupTest, QueryServiceStatsJsonSurfacesReplicaGroups) {
  fed::Federation federation;
  federation.Add(std::make_shared<net::ReplicaGroup>(
      "grouped",
      std::vector<std::shared_ptr<net::Endpoint>>{PlainReplica("grouped#0"),
                                                  PlainReplica("grouped#1")},
      SequentialOptions()));
  federation.Add(PlainReplica("plain"));
  cache::FederationCache cache;
  federation.set_query_cache(&cache);

  cache::QueryService service(&federation);
  auto submitted = service.Submit(kQuery);
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(submitted->get().ok());
  service.Drain();

  obs::JsonValue json = service.StatsJson();
  const obs::JsonValue& endpoints = json.Get("endpoints");
  ASSERT_EQ(endpoints.size(), 2u);
  bool saw_group = false;
  for (const obs::JsonValue& entry : endpoints.items()) {
    ASSERT_TRUE(entry.Has("breaker_state"));
    if (entry.Get("id").AsString() == "grouped") {
      saw_group = true;
      ASSERT_TRUE(entry.Has("replica_group"));
      EXPECT_EQ(entry.Get("replica_group").Get("replicas").size(), 2u);
    }
  }
  EXPECT_TRUE(saw_group);
  EXPECT_TRUE(json.Has("cache"));
}

TEST(ReplicaGroupTest, SourceSelectionSkipsGroupsWithEveryBreakerOpen) {
  net::FaultProfile down;
  down.permanently_down = true;
  net::ReplicaGroupOptions options = SequentialOptions();
  options.breaker_config.window_size = 4;
  options.breaker_config.min_samples = 2;
  options.breaker_config.open_cooldown_ms = 1e9;
  auto group = std::make_shared<net::ReplicaGroup>(
      "dead",
      std::vector<std::shared_ptr<net::Endpoint>>{
          FaultyReplica("dead#0", down)},
      options);
  // Trip the lone replica's breaker with direct traffic.
  while (group->HasAvailableReplica()) {
    ASSERT_FALSE(group->Query(kQuery).ok());
  }

  fed::Federation federation;
  federation.Add(group);
  federation.Add(PlainReplica("alive"));

  // Strict execution refuses fast instead of burning deadline budget on
  // probes the group cannot answer.
  core::LusailEngine strict(&federation);
  auto failed = strict.Execute(kQuery);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(failed.status().message().find("source selection"),
            std::string::npos)
      << failed.status().ToString();

  // Degraded execution keeps the survivors' contribution.
  core::LusailOptions degraded_options;
  degraded_options.partial_results = true;
  core::LusailEngine degraded(&federation, degraded_options);
  auto partial = degraded.Execute(kQuery);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial->profile.partial);
  EXPECT_EQ(partial->table.rows.size(), 5u);
}

// ---------------------------------------------------------------------
// 2-replica loopback end-to-end: LUBM over real sockets, mid-query kill
// ---------------------------------------------------------------------

/// Two LUBM universities, each a ReplicaGroup of two HttpServers serving
/// identical partitions on loopback ports, plus the in-process baseline
/// federation for row-identity checks.
class ReplicaLoopbackTest : public ::testing::Test {
 protected:
  static constexpr int kReplicasPerEndpoint = 2;

  void SetUp() override {
    workload::LubmConfig config = workload::LubmConfig::Small();
    config.num_universities = 2;
    std::vector<workload::EndpointSpec> specs =
        workload::LubmGenerator(config).GenerateAll();
    in_process_ = workload::BuildFederation(specs, net::LatencyModel::None());

    for (const auto& spec : specs) {
      std::vector<std::shared_ptr<net::Endpoint>> replicas;
      for (int r = 0; r < kReplicasPerEndpoint; ++r) {
        auto store = std::make_unique<store::TripleStore>();
        for (const auto& triple : spec.triples) store->Add(triple);
        store->Freeze();
        std::string replica_id = spec.id + "#" + std::to_string(r);
        auto endpoint = std::make_shared<net::SparqlEndpoint>(
            replica_id, std::move(store), net::LatencyModel::None());
        auto server = std::make_unique<rpc::HttpServer>(endpoint);
        ASSERT_TRUE(server->Start().ok());
        replicas.push_back(std::make_shared<rpc::HttpSparqlEndpoint>(
            replica_id, "127.0.0.1", server->port()));
        servers_.push_back(std::move(server));
      }
      remote_.Add(std::make_shared<net::ReplicaGroup>(
          spec.id, std::move(replicas)));
    }
  }
  void TearDown() override {
    for (auto& server : servers_) server->Stop();
  }

  std::unique_ptr<fed::Federation> in_process_;
  fed::Federation remote_;
  /// servers_[2 * u + r] is replica r of university u.
  std::vector<std::unique_ptr<rpc::HttpServer>> servers_;
};

TEST_F(ReplicaLoopbackTest, ReplicatedFederationIsRowIdentical) {
  core::LusailEngine local_engine(in_process_.get());
  core::LusailEngine remote_engine(&remote_);
  Result<fed::FederatedResult> local =
      local_engine.Execute(workload::LubmGenerator::QueryQa());
  Result<fed::FederatedResult> remote =
      remote_engine.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_GT(remote->table.rows.size(), 0u);
  EXPECT_EQ(CanonicalRows(remote->table), CanonicalRows(local->table));
}

TEST_F(ReplicaLoopbackTest, KilledReplicaFailsOverWithoutLosingRows) {
  core::LusailEngine local_engine(in_process_.get());
  Result<fed::FederatedResult> expected =
      local_engine.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Kill one replica of each university up front: every request must
  // transparently fail over to the survivor, with no partial-results or
  // retry-policy crutch configured.
  servers_[0]->Stop();
  servers_[2]->Stop();

  core::LusailEngine remote_engine(&remote_);
  Result<fed::FederatedResult> survived =
      remote_engine.Execute(workload::LubmGenerator::QueryQa(),
                            Deadline::AfterMillis(20000));
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_EQ(CanonicalRows(survived->table), CanonicalRows(expected->table));
}

TEST_F(ReplicaLoopbackTest, MidQueryReplicaKillKeepsRowIdentity) {
  core::LusailEngine local_engine(in_process_.get());
  Result<fed::FederatedResult> expected =
      local_engine.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Kill university 0's first replica while the query is in flight: the
  // kill can land during source selection, probes, or execution. The
  // survivor holds an identical partition, so the answer must come back
  // complete and row-identical — transparent failover, not degradation.
  core::LusailEngine remote_engine(&remote_);
  std::thread killer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    servers_[0]->Stop();
  });
  Result<fed::FederatedResult> survived =
      remote_engine.Execute(workload::LubmGenerator::QueryQa(),
                            Deadline::AfterMillis(20000));
  killer.join();
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_EQ(CanonicalRows(survived->table), CanonicalRows(expected->table));
}

}  // namespace
}  // namespace lusail
