// Tests for the telemetry plane's building blocks: trace ids and the
// thread-local trace context, the wire codec that ships span subtrees in
// X-Lusail-Trace headers (including size-capped truncation), cross-process
// grafting, the Prometheus metrics registry and exposition format, the
// flight recorder ring, and the single-lock exchange accounting that keeps
// concurrent scrapes consistent (retries can never outrun requests).

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "federation/federation.h"
#include "net/resilience.h"
#include "obs/endpoint_stats.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace lusail {
namespace {

using obs::FlightRecord;
using obs::FlightRecorder;
using obs::FlightRecorderOptions;
using obs::MetricLabels;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::Trace;
using obs::TraceContext;
using obs::TraceContextScope;
using obs::Tracer;

// ---------------------------------------------------------------------
// Trace ids and the thread-local context
// ---------------------------------------------------------------------

TEST(TraceIdTest, GeneratedIdsAreValidAndDistinct) {
  std::string a = obs::GenerateTraceId();
  std::string b = obs::GenerateTraceId();
  EXPECT_TRUE(obs::IsValidTraceId(a)) << a;
  EXPECT_TRUE(obs::IsValidTraceId(b)) << b;
  EXPECT_NE(a, b);
  EXPECT_EQ(a.size(), 32u);
}

TEST(TraceIdTest, RejectsMalformedIds) {
  EXPECT_FALSE(obs::IsValidTraceId(""));
  EXPECT_FALSE(obs::IsValidTraceId("short"));
  EXPECT_FALSE(obs::IsValidTraceId(std::string(32, '0')));  // All zero.
  EXPECT_FALSE(obs::IsValidTraceId(std::string(32, 'G')));  // Not hex.
  EXPECT_FALSE(obs::IsValidTraceId(std::string(33, 'a')));  // Too long.
  std::string uppercase = obs::GenerateTraceId();
  uppercase[0] = 'A';
  EXPECT_FALSE(obs::IsValidTraceId(uppercase));  // Lowercase only.
}

TEST(TraceContextTest, ScopesInstallAndRestore) {
  EXPECT_EQ(obs::CurrentTraceContext(), nullptr);
  auto tracer = std::make_shared<Tracer>();
  {
    TraceContext outer;
    outer.tracer = tracer;
    outer.trace_id = obs::GenerateTraceId();
    outer.parent = 7;
    TraceContextScope outer_scope(outer);
    ASSERT_NE(obs::CurrentTraceContext(), nullptr);
    EXPECT_EQ(obs::CurrentTraceContext()->parent, 7u);
    {
      TraceContext inner = outer;
      inner.parent = 9;
      TraceContextScope inner_scope(inner);
      EXPECT_EQ(obs::CurrentTraceContext()->parent, 9u);
    }
    // Inner scope destruction restores the outer context.
    EXPECT_EQ(obs::CurrentTraceContext()->parent, 7u);
  }
  EXPECT_EQ(obs::CurrentTraceContext(), nullptr);
}

TEST(TraceContextTest, DefaultScopeIsANoOp) {
  TraceContextScope scope;
  EXPECT_EQ(obs::CurrentTraceContext(), nullptr);
}

TEST(TraceContextTest, ContextIsPerThread) {
  TraceContext context;
  context.tracer = std::make_shared<Tracer>();
  context.trace_id = obs::GenerateTraceId();
  TraceContextScope scope(context);
  ASSERT_NE(obs::CurrentTraceContext(), nullptr);
  bool other_thread_saw_context = true;
  std::thread([&] {
    other_thread_saw_context = obs::CurrentTraceContext() != nullptr;
  }).join();
  EXPECT_FALSE(other_thread_saw_context);
}

// ---------------------------------------------------------------------
// Wire codec: ToWireString / FromWireString
// ---------------------------------------------------------------------

TEST(TraceWireTest, RoundTripsSpansAndIdentity) {
  Tracer tracer;
  tracer.set_trace_id(obs::GenerateTraceId());
  tracer.RegisterProcess(42, "endpointd/EP");
  obs::SpanId root = tracer.StartSpan("serve", "server");
  obs::SpanId child = tracer.StartSpan("evaluate", "server", root);
  tracer.Annotate(child, "rows", uint64_t{12});
  tracer.EndSpan(child);
  tracer.EndSpan(root);

  bool truncated = true;
  std::string wire = tracer.Snapshot().ToWireString(1 << 16, &truncated);
  EXPECT_FALSE(truncated);

  bool parsed_truncated = true;
  auto parsed = Trace::FromWireString(wire, &parsed_truncated);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed_truncated);
  EXPECT_EQ(parsed->trace_id, tracer.trace_id());
  ASSERT_EQ(parsed->spans.size(), 2u);
  const obs::Span* parsed_child = parsed->Find(child);
  ASSERT_NE(parsed_child, nullptr);
  EXPECT_EQ(parsed_child->parent, root);
  ASSERT_EQ(parsed_child->annotations.size(), 1u);
  EXPECT_EQ(parsed_child->annotations[0].key, "rows");
  EXPECT_EQ(parsed_child->annotations[0].value, "12");
}

TEST(TraceWireTest, TruncationKeepsTheRootAndMarks) {
  Tracer tracer;
  tracer.set_trace_id(obs::GenerateTraceId());
  obs::SpanId root = tracer.StartSpan("serve", "server");
  for (int i = 0; i < 200; ++i) {
    obs::SpanId child =
        tracer.StartSpan("child" + std::to_string(i), "server", root);
    tracer.EndSpan(child);
  }
  tracer.EndSpan(root);

  bool truncated = false;
  std::string wire = tracer.Snapshot().ToWireString(512, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_LE(wire.size(), 512u);

  bool parsed_truncated = false;
  auto parsed = Trace::FromWireString(wire, &parsed_truncated);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed_truncated);
  // The root survives; a prefix of children may ride along.
  ASSERT_GE(parsed->spans.size(), 1u);
  EXPECT_EQ(parsed->spans[0].id, root);
  EXPECT_LT(parsed->spans.size(), 201u);
}

TEST(TraceWireTest, RejectsMalformedPayloads) {
  EXPECT_FALSE(Trace::FromWireString("").ok());
  EXPECT_FALSE(Trace::FromWireString("not json").ok());
  EXPECT_FALSE(Trace::FromWireString("[1,2,3]").ok());
}

// ---------------------------------------------------------------------
// Grafting a remote subtree
// ---------------------------------------------------------------------

TEST(TraceGraftTest, RemapsIdsAndReparentsUnderAttachPoint) {
  // Server side: a subtree with ids that collide with the client's.
  Tracer server;
  server.set_trace_id(obs::GenerateTraceId());
  server.RegisterProcess(4242, "endpointd/EP");
  obs::SpanId server_root = server.StartSpan("serve", "server");
  obs::SpanId server_child = server.StartSpan("evaluate", "server",
                                              server_root);
  server.EndSpan(server_child);
  server.EndSpan(server_root);
  Trace remote = server.Snapshot();
  remote.local_process_id = 4242;

  // Client side: the request span the graft should attach under.
  Tracer client;
  client.set_trace_id(server.trace_id());
  obs::SpanId query = client.StartSpan("query", "query");
  obs::SpanId request = client.StartSpan("request", "request", query);

  obs::SpanId grafted_root = client.Graft(remote, request);
  ASSERT_NE(grafted_root, 0u);
  client.EndSpan(request);
  client.EndSpan(query);

  Trace merged = client.Snapshot();
  EXPECT_EQ(merged.spans.size(), 4u);
  const obs::Span* root_span = merged.Find(grafted_root);
  ASSERT_NE(root_span, nullptr);
  EXPECT_EQ(root_span->parent, request);
  // The remote child hangs off the grafted root, under a remapped id.
  std::vector<const obs::Span*> children = merged.ChildrenOf(grafted_root);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0]->name, "evaluate");
  // Every span of the merged trace reaches the client's query root.
  for (const obs::Span& span : merged.spans) {
    obs::SpanId cursor = span.id;
    int hops = 0;
    while (cursor != query && hops++ < 10) {
      const obs::Span* node = merged.Find(cursor);
      ASSERT_NE(node, nullptr);
      cursor = node->parent;
    }
    EXPECT_EQ(cursor, query) << "span " << span.name << " is orphaned";
  }
  // The server's process identity came along for per-process tracks.
  bool found_process = false;
  for (const auto& [pid, name] : merged.processes) {
    if (pid == 4242 && name == "endpointd/EP") found_process = true;
  }
  EXPECT_TRUE(found_process);
}

TEST(TraceGraftTest, EmptyRemoteGraftsNothing) {
  Tracer client;
  obs::SpanId query = client.StartSpan("query", "query");
  EXPECT_EQ(client.Graft(Trace{}, query), 0u);
  EXPECT_EQ(client.NumSpans(), 1u);
}

// ---------------------------------------------------------------------
// Metrics snapshot + Prometheus exposition
// ---------------------------------------------------------------------

TEST(MetricsSnapshotTest, RendersValidPrometheusText) {
  MetricsSnapshot snapshot;
  snapshot.AddCounter("lusail_rpc_requests_total", "Requests served.",
                      {{"server", "EP\"1\n"}}, 3);
  snapshot.AddCounter("lusail_rpc_requests_total", "Requests served.",
                      {{"server", "EP2"}}, 5);
  snapshot.AddGauge("lusail_replica_breaker_open", "Breaker state.",
                    {{"endpoint", "EP"}, {"replica", "EP#0"}}, 0);
  obs::LatencyHistogram histogram;
  histogram.Record(0.5);
  histogram.Record(2.0);
  snapshot.AddHistogram("lusail_endpoint_latency_seconds", "Latency.",
                        {{"endpoint", "EP"}}, histogram);

  std::string text = snapshot.RenderPrometheus();
  // One HELP/TYPE block per family, not per sample.
  EXPECT_EQ(text.find("# HELP lusail_rpc_requests_total Requests served."),
            text.rfind("# HELP lusail_rpc_requests_total"));
  EXPECT_NE(text.find("# TYPE lusail_rpc_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lusail_replica_breaker_open gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lusail_endpoint_latency_seconds histogram"),
            std::string::npos);
  // Label values are escaped (quote and newline).
  EXPECT_NE(text.find("lusail_rpc_requests_total{server=\"EP\\\"1\\n\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lusail_rpc_requests_total{server=\"EP2\"} 5"),
            std::string::npos);
  // Histogram exposition: cumulative buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("lusail_endpoint_latency_seconds_bucket{endpoint=\"EP\","
                      "le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lusail_endpoint_latency_seconds_count{endpoint=\"EP\"}"
                      " 2"),
            std::string::npos);
  EXPECT_NE(text.find("lusail_endpoint_latency_seconds_sum"),
            std::string::npos);
  // Exposition ends with a newline (required by the text format).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(MetricsSnapshotTest, HelpTextIsEscapedPerExpositionFormat) {
  // Format 0.0.4: HELP text escapes backslash and newline ONLY — quotes
  // are legal verbatim in a comment. A raw newline in the help string
  // must not split the comment into a second line (the remainder would
  // parse as a malformed sample).
  MetricsSnapshot snapshot;
  snapshot.AddCounter("a_total", "first line\nsecond \"quoted\" c:\\path",
                      {}, 1);
  std::string text = snapshot.RenderPrometheus();
  EXPECT_NE(
      text.find(
          "# HELP a_total first line\\nsecond \"quoted\" c:\\\\path\n"),
      std::string::npos)
      << text;
  // Every line of the exposition is a comment or a sample; the raw
  // newline inside the help string must not have leaked a bare line.
  EXPECT_EQ(text.find("second \"quoted\""), text.rfind("second \"quoted\""));
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string line = text.substr(pos, eol - pos);
    EXPECT_TRUE(line.rfind("# ", 0) == 0 || line.rfind("a_total", 0) == 0)
        << "stray exposition line: " << line;
    pos = eol + 1;
  }
}

TEST(MetricsSnapshotTest, HistogramBucketsAreCumulative) {
  MetricsSnapshot snapshot;
  obs::LatencyHistogram histogram;
  histogram.Record(0.001);  // ~1 us.
  histogram.Record(1.0);    // ~1 ms.
  histogram.Record(1000.0); // ~1 s.
  snapshot.AddHistogram("h_seconds", "h", {}, histogram);
  std::string text = snapshot.RenderPrometheus();
  // Parse every bucket line and check the counts never decrease.
  uint64_t previous = 0;
  size_t buckets_seen = 0;
  size_t pos = 0;
  while ((pos = text.find("h_seconds_bucket{le=\"", pos)) !=
         std::string::npos) {
    size_t space = text.find("} ", pos);
    ASSERT_NE(space, std::string::npos);
    uint64_t count = std::strtoull(text.c_str() + space + 2, nullptr, 10);
    EXPECT_GE(count, previous);
    previous = count;
    ++buckets_seen;
    pos = space;
  }
  EXPECT_GE(buckets_seen, 3u);
  EXPECT_EQ(previous, 3u);  // +Inf bucket equals the total count.
}

TEST(MetricsRegistryTest, CollectorsComeAndGo) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.NumCollectors(), 0u);
  {
    obs::ScopedCollector collector(
        &registry, [](MetricsSnapshot* snapshot) {
          snapshot->AddCounter("x_total", "x", {}, 1);
        });
    EXPECT_EQ(registry.NumCollectors(), 1u);
    std::string text = registry.RenderPrometheus();
    EXPECT_NE(text.find("x_total 1"), std::string::npos) << text;
  }
  EXPECT_EQ(registry.NumCollectors(), 0u);
  EXPECT_EQ(registry.RenderPrometheus().find("x_total"), std::string::npos);
}

TEST(MetricsRegistryTest, CollectIntoMergesFamiliesAcrossCollectors) {
  MetricsRegistry registry;
  obs::ScopedCollector first(&registry, [](MetricsSnapshot* snapshot) {
    snapshot->AddCounter("shared_total", "s", {{"who", "a"}}, 1);
  });
  obs::ScopedCollector second(&registry, [](MetricsSnapshot* snapshot) {
    snapshot->AddCounter("shared_total", "s", {{"who", "b"}}, 2);
  });
  MetricsSnapshot snapshot;
  snapshot.AddCounter("shared_total", "s", {{"who", "local"}}, 3);
  registry.CollectInto(&snapshot);
  ASSERT_EQ(snapshot.families().size(), 1u);
  EXPECT_EQ(snapshot.families()[0].samples.size(), 3u);
  // And the render shows exactly one HELP line for the merged family.
  std::string text = snapshot.RenderPrometheus();
  EXPECT_EQ(text.find("# HELP shared_total"),
            text.rfind("# HELP shared_total"));
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorderTest, RingKeepsTheLastKNewestFirst) {
  FlightRecorderOptions options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    FlightRecord record;
    record.query_hash = obs::QueryHashHex("q" + std::to_string(i));
    record.rows = static_cast<uint64_t>(i);
    recorder.Record(std::move(record));
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  std::vector<FlightRecord> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent[0].rows, 9u);  // Newest first.
  EXPECT_EQ(recent[3].rows, 6u);
  // Sequence numbers are monotonic and survive the ring's eviction.
  EXPECT_GT(recent[0].sequence, recent[3].sequence);
  // Recent(n) limits further.
  EXPECT_EQ(recorder.Recent(2).size(), 2u);
}

TEST(FlightRecorderTest, SlowThresholdClassifiesAndCounts) {
  FlightRecorderOptions options;
  options.slow_threshold_ms = 100.0;
  FlightRecorder recorder(options);
  FlightRecord fast;
  fast.total_ms = 5.0;
  recorder.Record(std::move(fast));
  FlightRecord slow;
  slow.total_ms = 250.0;
  recorder.Record(std::move(slow));
  EXPECT_EQ(recorder.slow_queries(), 1u);
  std::vector<FlightRecord> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_TRUE(recent[0].slow);
  EXPECT_FALSE(recent[1].slow);
}

TEST(FlightRecorderTest, ToJsonCarriesTotalsAndRecords) {
  FlightRecorder recorder;
  FlightRecord record;
  record.query_hash = obs::QueryHashHex("SELECT * WHERE { ?s ?p ?o }");
  record.trace_id = obs::GenerateTraceId();
  record.status = "Timeout";
  record.cancelled = true;
  recorder.Record(std::move(record));
  obs::JsonValue json = recorder.ToJson();
  std::string text = json.Serialize();
  EXPECT_NE(text.find("\"total\":1"), std::string::npos) << text;
  EXPECT_NE(text.find("\"status\":\"Timeout\""), std::string::npos);
  EXPECT_NE(text.find("\"cancelled\":true"), std::string::npos);
}

TEST(FlightRecorderTest, JsonLogLinesAreWellFormed) {
  std::FILE* stream = std::tmpfile();
  ASSERT_NE(stream, nullptr);
  FlightRecorderOptions options;
  options.log_json = true;
  options.stream = stream;
  FlightRecorder recorder(options);
  FlightRecord record;
  record.query_hash = obs::QueryHashHex("q");
  record.rows = 3;
  recorder.Record(std::move(record));
  std::fflush(stream);
  std::rewind(stream);
  char line[4096] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), stream), nullptr);
  std::fclose(stream);
  auto parsed = obs::JsonValue::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_NE(std::string(line).find("\"event\":\"query\""),
            std::string::npos);
}

TEST(FlightRecorderTest, QueryHashIsStableAndHexShaped) {
  std::string a = obs::QueryHashHex("SELECT 1");
  EXPECT_EQ(a, obs::QueryHashHex("SELECT 1"));
  EXPECT_NE(a, obs::QueryHashHex("SELECT 2"));
  EXPECT_EQ(a.size(), 16u);
  for (char c : a) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << a;
  }
}

// ---------------------------------------------------------------------
// Counter-snapshot consistency under concurrency (the scrape race)
// ---------------------------------------------------------------------

// Regression for the MetricsCollector scrape race: RecordRetryOutcome
// followed by RecordRequest let a concurrent FillCounters observe the
// retries of an exchange whose request it had not counted yet, reporting
// retries > requests. RecordExchange applies both under one lock; this
// hammer (run under TSan in CI) asserts the invariant never breaks.
TEST(MetricsCollectorRaceTest, SnapshotsNeverShowRetriesAheadOfRequests) {
  fed::MetricsCollector collector;
  constexpr int kWriters = 4;
  constexpr int kExchangesPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      fed::ExecutionProfile profile;
      collector.FillCounters(&profile);
      // Every exchange records exactly one request and one retry; a cut
      // where retries outrun requests means the lock was split.
      if (profile.retries > profile.requests) {
        violated.store(true, std::memory_order_release);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kExchangesPerWriter; ++i) {
        net::QueryResponse response;
        response.request_bytes = 10;
        response.response_bytes = 20;
        net::RetryOutcome outcome;
        outcome.attempts = 2;
        outcome.retries = 1;
        collector.RecordExchange(&response, false, outcome);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_FALSE(violated.load());
  fed::ExecutionProfile profile;
  collector.FillCounters(&profile);
  EXPECT_EQ(profile.requests,
            static_cast<uint64_t>(kWriters) * kExchangesPerWriter);
  EXPECT_EQ(profile.retries, profile.requests);
}

TEST(EndpointStatsRaceTest, ExchangesAreAtomicAgainstScrapes) {
  obs::EndpointStatsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kExchangesPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      obs::EndpointStats stats = registry.Get("EP");
      if (stats.retries > stats.requests) {
        violated.store(true, std::memory_order_release);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kExchangesPerWriter; ++i) {
        obs::EndpointExchange exchange;
        exchange.success = true;
        exchange.latency_ms = 1.0;
        exchange.retries = 1;
        registry.RecordExchange("EP", exchange);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_FALSE(violated.load());
  obs::EndpointStats stats = registry.Get("EP");
  EXPECT_EQ(stats.requests,
            static_cast<uint64_t>(kWriters) * kExchangesPerWriter);
  EXPECT_EQ(stats.retries, stats.requests);
  EXPECT_EQ(stats.latency.count(), stats.successes);
}

TEST(EndpointStatsTest, ExchangeAppliesEveryField) {
  obs::EndpointStatsRegistry registry;
  obs::EndpointExchange exchange;
  exchange.success = true;
  exchange.latency_ms = 3.0;
  exchange.bytes_sent = 100;
  exchange.bytes_received = 200;
  exchange.rows = 7;
  exchange.retries = 2;
  exchange.breaker_rejections = 1;
  exchange.breaker_trips = 1;
  exchange.network = true;
  exchange.reused_connection = true;
  exchange.wire_bytes_sent = 150;
  exchange.wire_bytes_received = 250;
  registry.RecordExchange("EP", exchange);

  obs::EndpointExchange failure;
  failure.success = false;
  failure.timeout = true;
  registry.RecordExchange("EP", failure);

  obs::EndpointStats stats = registry.Get("EP");
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.successes, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.breaker_rejections, 1u);
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.bytes_sent, 100u);
  EXPECT_EQ(stats.bytes_received, 200u);
  EXPECT_EQ(stats.rows_received, 7u);
  EXPECT_EQ(stats.network_requests, 1u);
  EXPECT_EQ(stats.connections_reused, 1u);
  EXPECT_EQ(stats.connections_opened, 0u);
  EXPECT_EQ(stats.wire_bytes_sent, 150u);
  EXPECT_EQ(stats.wire_bytes_received, 250u);
  EXPECT_EQ(stats.latency.count(), 1u);
}

TEST(EndpointStatsTest, ExportMetricsEmitsPerEndpointSamples) {
  obs::EndpointStatsRegistry registry;
  obs::EndpointExchange exchange;
  exchange.success = true;
  exchange.latency_ms = 1.0;
  registry.RecordExchange("EP1", exchange);
  registry.RecordExchange("EP2", exchange);
  MetricsSnapshot snapshot;
  registry.ExportMetrics(&snapshot);
  std::string text = snapshot.RenderPrometheus();
  EXPECT_NE(text.find("lusail_endpoint_requests_total{endpoint=\"EP1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lusail_endpoint_requests_total{endpoint=\"EP2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lusail_endpoint_latency_seconds_count"),
            std::string::npos);
}

}  // namespace
}  // namespace lusail
