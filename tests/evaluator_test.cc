#include "sparql/evaluator.h"

#include <gtest/gtest.h>

#include "sparql/expr_eval.h"
#include "sparql/parser.h"
#include "store/triple_store.h"

namespace lusail::sparql {
namespace {

using rdf::Term;
using rdf::TermTriple;

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [this](const Term& s, const std::string& p, const Term& o) {
      store_.Add(TermTriple{s, Term::Iri("http://ex/" + p), o});
    };
    Term alice = Term::Iri("http://ex/alice");
    Term bob = Term::Iri("http://ex/bob");
    Term carol = Term::Iri("http://ex/carol");
    Term person = Term::Iri("http://ex/Person");
    add(alice, "type", person);
    add(bob, "type", person);
    add(carol, "type", person);
    add(alice, "knows", bob);
    add(bob, "knows", carol);
    add(alice, "knows", carol);
    add(alice, "age", Term::Integer(30));
    add(bob, "age", Term::Integer(25));
    add(carol, "age", Term::Integer(35));
    add(alice, "email", Term::Literal("alice@example.org"));
    add(alice, "name", Term::LangLiteral("Alice", "en"));
    add(bob, "name", Term::Literal("Bob"));
    store_.Freeze();
  }

  ResultTable Run(const std::string& text) {
    auto query = ParseQuery("PREFIX ex: <http://ex/>\n" + text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    Evaluator evaluator(&store_);
    auto result = evaluator.Execute(*query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : ResultTable{};
  }

  store::TripleStore store_;
};

TEST_F(EvaluatorTest, SingleTriplePattern) {
  ResultTable t = Run("SELECT ?x WHERE { ?x ex:type ex:Person . }");
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST_F(EvaluatorTest, TwoPatternJoin) {
  ResultTable t =
      Run("SELECT ?x ?y WHERE { ?x ex:knows ?y . ?y ex:age ?a . }");
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST_F(EvaluatorTest, TriangleJoin) {
  // alice knows bob, bob knows carol, alice knows carol.
  ResultTable t = Run(
      "SELECT ?a ?b ?c WHERE { ?a ex:knows ?b . ?b ex:knows ?c . "
      "?a ex:knows ?c . }");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.rows[0][0]->lexical(), "http://ex/alice");
}

TEST_F(EvaluatorTest, RepeatedVariableInPattern) {
  // Nobody knows themselves.
  ResultTable t = Run("SELECT ?x WHERE { ?x ex:knows ?x . }");
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST_F(EvaluatorTest, ConstantNotInStoreGivesEmpty) {
  ResultTable t = Run("SELECT ?x WHERE { ?x ex:knows ex:nonexistent . }");
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST_F(EvaluatorTest, NumericFilter) {
  ResultTable t =
      Run("SELECT ?x WHERE { ?x ex:age ?a . FILTER (?a > 28) }");
  EXPECT_EQ(t.NumRows(), 2u);  // alice 30, carol 35.
}

TEST_F(EvaluatorTest, StringFunctions) {
  ResultTable t = Run(
      "SELECT ?x WHERE { ?x ex:email ?e . FILTER (CONTAINS(?e, \"@\") && "
      "STRSTARTS(?e, \"alice\")) }");
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST_F(EvaluatorTest, LangAndDatatype) {
  ResultTable t = Run(
      "SELECT ?x WHERE { ?x ex:name ?n . FILTER (LANG(?n) = \"en\") }");
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST_F(EvaluatorTest, OptionalKeepsUnmatchedRows) {
  ResultTable t = Run(
      "SELECT ?x ?e WHERE { ?x ex:type ex:Person . "
      "OPTIONAL { ?x ex:email ?e . } }");
  ASSERT_EQ(t.NumRows(), 3u);
  int unbound = 0;
  for (const auto& row : t.rows) {
    if (!row[1].has_value()) ++unbound;
  }
  EXPECT_EQ(unbound, 2);  // bob and carol have no email.
}

TEST_F(EvaluatorTest, BoundFilterAfterOptional) {
  ResultTable t = Run(
      "SELECT ?x WHERE { ?x ex:type ex:Person . "
      "OPTIONAL { ?x ex:email ?e . } FILTER (!BOUND(?e)) }");
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(EvaluatorTest, Union) {
  ResultTable t = Run(
      "SELECT ?x WHERE { { ?x ex:email ?v . } UNION { ?x ex:age ?v . } }");
  EXPECT_EQ(t.NumRows(), 4u);  // 1 email + 3 ages.
}

TEST_F(EvaluatorTest, ValuesJoin) {
  ResultTable t = Run(
      "SELECT ?x ?a WHERE { ?x ex:age ?a . "
      "VALUES ?x { ex:alice ex:carol ex:ghost } }");
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(EvaluatorTest, ValuesWithForeignTermsIsSafe) {
  // VALUES terms absent from the store must not crash or match.
  ResultTable t = Run(
      "SELECT ?x WHERE { ?x ex:knows ?y . "
      "VALUES ?y { <http://other/unknown> } }");
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST_F(EvaluatorTest, FilterExists) {
  ResultTable t = Run(
      "SELECT ?x WHERE { ?x ex:type ex:Person . "
      "FILTER EXISTS { ?x ex:email ?e . } }");
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST_F(EvaluatorTest, FilterNotExists) {
  ResultTable t = Run(
      "SELECT ?x WHERE { ?x ex:type ex:Person . "
      "FILTER NOT EXISTS { ?x ex:email ?e . } }");
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST_F(EvaluatorTest, Distinct) {
  ResultTable t = Run("SELECT DISTINCT ?x WHERE { ?x ex:knows ?y . }");
  EXPECT_EQ(t.NumRows(), 2u);  // alice, bob.
}

TEST_F(EvaluatorTest, LimitAndOffset) {
  ResultTable all = Run("SELECT ?x ?a WHERE { ?x ex:age ?a . }");
  ResultTable limited =
      Run("SELECT ?x ?a WHERE { ?x ex:age ?a . } LIMIT 2");
  ResultTable offset =
      Run("SELECT ?x ?a WHERE { ?x ex:age ?a . } LIMIT 2 OFFSET 2");
  EXPECT_EQ(all.NumRows(), 3u);
  EXPECT_EQ(limited.NumRows(), 2u);
  EXPECT_EQ(offset.NumRows(), 1u);
}

TEST_F(EvaluatorTest, CountStar) {
  ResultTable t = Run("SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o . }");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.rows[0][0]->lexical(), std::to_string(store_.size()));
}

TEST_F(EvaluatorTest, CountDistinct) {
  ResultTable t = Run(
      "SELECT (COUNT(DISTINCT ?x) AS ?c) WHERE { ?x ex:knows ?y . }");
  EXPECT_EQ(t.rows[0][0]->lexical(), "2");
}

TEST_F(EvaluatorTest, Ask) {
  Evaluator evaluator(&store_);
  auto yes = ParseQuery("ASK { <http://ex/alice> <http://ex/knows> ?x . }");
  auto no = ParseQuery("ASK { <http://ex/carol> <http://ex/knows> ?x . }");
  EXPECT_TRUE(*evaluator.Ask(*yes));
  EXPECT_FALSE(*evaluator.Ask(*no));
}

TEST_F(EvaluatorTest, ProjectionOfNeverBoundVariable) {
  ResultTable t = Run("SELECT ?x ?nothere WHERE { ?x ex:age ?a . }");
  ASSERT_EQ(t.NumRows(), 3u);
  EXPECT_FALSE(t.rows[0][1].has_value());
}

TEST_F(EvaluatorTest, SelectStarCoversAllVariables) {
  ResultTable t = Run("SELECT * WHERE { ?x ex:knows ?y . }");
  EXPECT_EQ(t.vars.size(), 2u);
}

// ---------------------------------------------------------------------
// Expression evaluation unit tests.
// ---------------------------------------------------------------------

TEST(ExprEvalTest, ArithmeticAndComparison) {
  auto lookup = [](const std::string&) -> const Term* { return nullptr; };
  Expr five = Expr::Const(Term::Integer(5));
  Expr three = Expr::Const(Term::Integer(3));
  auto sum = EvalExpr(Expr::Binary(ExprOp::kAdd, five, three), lookup);
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(sum->lexical(), "8");
  auto prod = EvalExpr(Expr::Binary(ExprOp::kMul, five, three), lookup);
  EXPECT_EQ(prod->lexical(), "15");
  EXPECT_TRUE(EvalFilter(Expr::Binary(ExprOp::kGt, five, three), lookup));
  EXPECT_FALSE(EvalFilter(Expr::Binary(ExprOp::kLt, five, three), lookup));
}

TEST(ExprEvalTest, DivisionByZeroIsError) {
  auto lookup = [](const std::string&) -> const Term* { return nullptr; };
  Expr e = Expr::Binary(ExprOp::kDiv, Expr::Const(Term::Integer(1)),
                        Expr::Const(Term::Integer(0)));
  EXPECT_FALSE(EvalExpr(e, lookup).has_value());
  EXPECT_FALSE(EvalFilter(e, lookup));  // Errors coerce to false.
}

TEST(ExprEvalTest, UnboundVariableIsErrorExceptBound) {
  auto lookup = [](const std::string&) -> const Term* { return nullptr; };
  EXPECT_FALSE(EvalFilter(Expr::Var("x"), lookup));
  Expr bound = Expr::Unary(ExprOp::kBound, Expr::Var("x"));
  auto v = EvalExpr(bound, lookup);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->lexical(), "false");
}

TEST(ExprEvalTest, LogicalErrorPropagation) {
  auto lookup = [](const std::string&) -> const Term* { return nullptr; };
  Expr err = Expr::Var("unbound");
  Expr t = Expr::Const(Term::TypedLiteral("true", std::string(rdf::kXsdBoolean)));
  Expr f = Expr::Const(Term::TypedLiteral("false", std::string(rdf::kXsdBoolean)));
  // false && error = false; true || error = true; true && error = error.
  EXPECT_FALSE(EvalFilter(Expr::Binary(ExprOp::kAnd, f, err), lookup));
  EXPECT_TRUE(EvalFilter(Expr::Binary(ExprOp::kOr, t, err), lookup));
  EXPECT_FALSE(EvalExpr(Expr::Binary(ExprOp::kAnd, t, err), lookup)
                   .has_value());
}

TEST(ExprEvalTest, NumericEqualityAcrossTypes) {
  auto lookup = [](const std::string&) -> const Term* { return nullptr; };
  Expr i = Expr::Const(Term::Integer(5));
  Expr d = Expr::Const(Term::Double(5.0));
  EXPECT_TRUE(EvalFilter(Expr::Binary(ExprOp::kEq, i, d), lookup));
}

TEST(ExprEvalTest, SameTermIsStricterThanEquals) {
  auto lookup = [](const std::string&) -> const Term* { return nullptr; };
  Expr i = Expr::Const(Term::Integer(5));
  Expr d = Expr::Const(Term::Double(5.0));
  EXPECT_FALSE(EvalFilter(Expr::Binary(ExprOp::kSameTerm, i, d), lookup));
}

}  // namespace
}  // namespace lusail::sparql

namespace lusail::sparql {
namespace {

class OrderByEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 5; ++i) {
      store_.Add(rdf::TermTriple{
          rdf::Term::Iri("http://ex/item" + std::to_string(i)),
          rdf::Term::Iri("http://ex/rank"),
          rdf::Term::Integer((i * 7) % 5)});  // 0,2,4,1,3.
    }
    store_.Freeze();
  }
  store::TripleStore store_;
};

TEST_F(OrderByEvalTest, AscendingNumericOrder) {
  Evaluator evaluator(&store_);
  auto q = ParseQuery(
      "SELECT ?x ?r WHERE { ?x <http://ex/rank> ?r . } ORDER BY ?r");
  auto result = evaluator.Execute(*q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 5u);
  for (size_t i = 0; i + 1 < result->rows.size(); ++i) {
    EXPECT_LE(result->rows[i][1]->AsDouble(),
              result->rows[i + 1][1]->AsDouble());
  }
}

TEST_F(OrderByEvalTest, DescendingWithLimitTakesTop) {
  Evaluator evaluator(&store_);
  auto q = ParseQuery(
      "SELECT ?x ?r WHERE { ?x <http://ex/rank> ?r . } ORDER BY DESC(?r) "
      "LIMIT 2");
  auto result = evaluator.Execute(*q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 2u);
  EXPECT_DOUBLE_EQ(result->rows[0][1]->AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(result->rows[1][1]->AsDouble(), 3.0);
}

TEST_F(OrderByEvalTest, OffsetAppliesAfterSort) {
  Evaluator evaluator(&store_);
  auto q = ParseQuery(
      "SELECT ?r WHERE { ?x <http://ex/rank> ?r . } ORDER BY ?r "
      "LIMIT 2 OFFSET 1");
  auto result = evaluator.Execute(*q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 2u);
  EXPECT_DOUBLE_EQ(result->rows[0][0]->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(result->rows[1][0]->AsDouble(), 2.0);
}

TEST(CompareForOrderTest, TotalOrderSemantics) {
  using rdf::Term;
  std::optional<Term> unbound;
  std::optional<Term> blank = Term::BlankNode("b");
  std::optional<Term> iri = Term::Iri("http://a");
  std::optional<Term> lit = Term::Literal("a");
  EXPECT_LT(CompareForOrder(unbound, blank), 0);
  EXPECT_LT(CompareForOrder(blank, iri), 0);
  EXPECT_LT(CompareForOrder(iri, lit), 0);
  EXPECT_EQ(CompareForOrder(lit, lit), 0);
  // Numeric literals compare by value, not lexically.
  EXPECT_LT(CompareForOrder(Term::Integer(9), Term::Integer(10)), 0);
}

}  // namespace
}  // namespace lusail::sparql
