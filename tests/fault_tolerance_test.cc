// Tests for the fault-tolerance layer: deterministic fault injection,
// retry + circuit-breaker resilience, and graceful degradation (partial
// results) across Lusail and the baseline engines.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/anapsid_engine.h"
#include "baselines/fedx_engine.h"
#include "core/lusail_engine.h"
#include "net/fault_injection.h"
#include "net/resilience.h"
#include "net/sparql_endpoint.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// A federation whose endpoints are wrapped in fault injectors. `base`
/// owns the real endpoints; `faulty` aliases them through the injectors.
struct ChaosFederation {
  std::unique_ptr<fed::Federation> base;
  fed::Federation faulty;
  std::vector<std::shared_ptr<net::FaultInjectingEndpoint>> injectors;
};

std::unique_ptr<ChaosFederation> WrapWithFaults(
    std::vector<workload::EndpointSpec> specs,
    const net::FaultProfile& profile) {
  auto out = std::make_unique<ChaosFederation>();
  out->base =
      workload::BuildFederation(std::move(specs), net::LatencyModel::None());
  for (size_t i = 0; i < out->base->size(); ++i) {
    auto inner = std::shared_ptr<net::Endpoint>(out->base->endpoint(i),
                                                [](net::Endpoint*) {});
    auto injector =
        std::make_shared<net::FaultInjectingEndpoint>(inner, profile);
    out->injectors.push_back(injector);
    out->faulty.Add(injector);
  }
  return out;
}

/// Order-independent row fingerprints for result comparison.
std::vector<std::string> CanonicalRows(const sparql::ResultTable& table) {
  std::vector<std::string> rows;
  for (const auto& row : table.rows) {
    std::string s;
    for (const auto& cell : row) {
      s += cell.has_value() ? cell->ToString() : "UNDEF";
      s += "\x1f";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::unique_ptr<store::TripleStore> TinyStore() {
  auto store = std::make_unique<store::TripleStore>();
  for (int i = 0; i < 5; ++i) {
    store->Add(rdf::TermTriple{
        rdf::Term::Iri("http://ex/s" + std::to_string(i)),
        rdf::Term::Iri("http://ex/p"), rdf::Term::Integer(i)});
  }
  store->Freeze();
  return store;
}

// ---------------------------------------------------------------------
// Fault injection determinism
// ---------------------------------------------------------------------

TEST(FaultInjectionTest, SameSeedSameFaultStream) {
  net::FaultProfile profile;
  profile.seed = 99;
  profile.transient_error_rate = 0.3;
  profile.timeout_rate = 0.1;
  auto make = [&] {
    return std::make_unique<net::FaultInjectingEndpoint>(
        std::make_shared<net::SparqlEndpoint>("ep0", TinyStore(),
                                              net::LatencyModel::None()),
        profile);
  };
  auto a = make();
  auto b = make();
  const std::string query = "ASK { ?s <http://ex/p> ?o . }";
  for (int i = 0; i < 50; ++i) {
    auto ra = a->Query(query);
    auto rb = b->Query(query);
    ASSERT_EQ(ra.ok(), rb.ok()) << "diverged at request " << i;
    if (!ra.ok()) {
      EXPECT_EQ(ra.status().code(), rb.status().code());
    }
  }
  EXPECT_EQ(a->stats().injected_errors, b->stats().injected_errors);
  EXPECT_EQ(a->stats().injected_timeouts, b->stats().injected_timeouts);
  EXPECT_GT(a->stats().injected_errors, 0u);
  EXPECT_GT(a->stats().passed_through, 0u);
}

TEST(FaultInjectionTest, DifferentSeedsDifferentStreams) {
  auto make = [](uint64_t seed) {
    return std::make_unique<net::FaultInjectingEndpoint>(
        std::make_shared<net::SparqlEndpoint>("ep0", TinyStore(),
                                              net::LatencyModel::None()),
        net::FaultProfile::Transient(0.5, seed));
  };
  auto a = make(1);
  auto b = make(2);
  const std::string query = "ASK { ?s <http://ex/p> ?o . }";
  int diverged = 0;
  for (int i = 0; i < 64; ++i) {
    if (a->Query(query).ok() != b->Query(query).ok()) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(FaultInjectionTest, ResetHistoryReplaysTheStream) {
  auto injector = std::make_unique<net::FaultInjectingEndpoint>(
      std::make_shared<net::SparqlEndpoint>("ep0", TinyStore(),
                                            net::LatencyModel::None()),
      net::FaultProfile::Transient(0.4, 7));
  const std::string query = "ASK { ?s <http://ex/p> ?o . }";
  std::vector<bool> first;
  for (int i = 0; i < 30; ++i) first.push_back(injector->Query(query).ok());
  injector->ResetHistory();
  EXPECT_EQ(injector->stats().requests, 0u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(injector->Query(query).ok(), first[i]) << "request " << i;
  }
}

TEST(FaultInjectionTest, OutageWindowFailsByArrivalIndex) {
  net::FaultProfile profile;
  profile.outage_start = 2;
  profile.outage_length = 3;
  auto injector = std::make_unique<net::FaultInjectingEndpoint>(
      std::make_shared<net::SparqlEndpoint>("ep0", TinyStore(),
                                            net::LatencyModel::None()),
      profile);
  const std::string query = "ASK { ?s <http://ex/p> ?o . }";
  std::vector<bool> ok;
  for (int i = 0; i < 8; ++i) ok.push_back(injector->Query(query).ok());
  EXPECT_EQ(ok, (std::vector<bool>{true, true, false, false, false, true,
                                   true, true}));
  EXPECT_EQ(injector->stats().outage_failures, 3u);
}

TEST(FaultInjectionTest, HardDownFailsEverythingUntilRevived) {
  auto injector = std::make_unique<net::FaultInjectingEndpoint>(
      std::make_shared<net::SparqlEndpoint>("ep0", TinyStore(),
                                            net::LatencyModel::None()),
      net::FaultProfile::None());
  injector->set_down(true);
  const std::string query = "ASK { ?s <http://ex/p> ?o . }";
  auto r = injector->Query(query);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(r.status().IsRetryable());
  injector->set_down(false);
  EXPECT_TRUE(injector->Query(query).ok());
}

// ---------------------------------------------------------------------
// Circuit breaker state machine
// ---------------------------------------------------------------------

net::CircuitBreakerConfig TightBreaker() {
  net::CircuitBreakerConfig config;
  config.window_size = 4;
  config.min_samples = 4;
  config.failure_rate_threshold = 0.5;
  config.open_cooldown_ms = 20.0;
  config.half_open_probes = 1;
  return config;
}

TEST(CircuitBreakerTest, TripsAtFailureRateThreshold) {
  net::CircuitBreaker breaker(TightBreaker());
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  // 3 of 4 outcomes failed >= 50%: this failure trips it.
  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccess) {
  net::CircuitBreaker breaker(TightBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), net::CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(breaker.AllowRequest());  // Cooldown elapsed: half-open probe.
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest());  // Only one probe admitted.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  net::CircuitBreaker breaker(TightBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  ASSERT_TRUE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  breaker.Reset();
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------
// ResilientEndpoint decorator
// ---------------------------------------------------------------------

TEST(ResilientEndpointTest, RetriesThroughTransientFaults) {
  auto injector = std::make_shared<net::FaultInjectingEndpoint>(
      std::make_shared<net::SparqlEndpoint>("ep0", TinyStore(),
                                            net::LatencyModel::None()),
      net::FaultProfile::Transient(0.5, 11));
  net::RetryPolicy policy = net::RetryPolicy::Standard(8);
  policy.initial_backoff_ms = 0.1;
  policy.max_backoff_ms = 0.5;
  // At a 50% fault rate the breaker could legitimately open; this test
  // is about the retry loop alone.
  policy.use_circuit_breaker = false;
  net::ResilientEndpoint endpoint(injector, policy);
  for (int i = 0; i < 20; ++i) {
    auto r = endpoint.Query("ASK { ?s <http://ex/p> ?o . }");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  net::ResilienceStats stats = endpoint.stats();
  EXPECT_EQ(stats.requests, 20u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(stats.attempts, stats.requests);
}

TEST(ResilientEndpointTest, BreakerOpensOnPersistentOutageAndFailsFast) {
  auto injector = std::make_shared<net::FaultInjectingEndpoint>(
      std::make_shared<net::SparqlEndpoint>("ep0", TinyStore(),
                                            net::LatencyModel::None()),
      net::FaultProfile::None());
  injector->set_down(true);
  net::RetryPolicy policy = net::RetryPolicy::Standard(3);
  policy.initial_backoff_ms = 0.1;
  policy.max_backoff_ms = 0.5;
  net::ResilientEndpoint endpoint(injector, policy, TightBreaker());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(endpoint.Query("ASK { ?s ?p ?o . }").ok());
  }
  net::ResilienceStats stats = endpoint.stats();
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_GT(stats.breaker_rejections, 0u);
  EXPECT_EQ(endpoint.breaker().state(), net::CircuitBreaker::State::kOpen);
  // Fail-fast: once open, attempts stop growing with each call.
  EXPECT_LT(stats.attempts, 10u * 3u);
  auto r = endpoint.Query("ASK { ?s ?p ?o . }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("circuit breaker open"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Deadline-aware retries: no doomed attempts, no breaker pollution
// ---------------------------------------------------------------------

/// Endpoint that sleeps out the caller's remaining deadline budget (plus
/// a margin) and then fails with `code` — the shape of a server slower
/// than the client's patience.
class SleepOutDeadlineEndpoint : public net::Endpoint {
 public:
  SleepOutDeadlineEndpoint(std::string id, StatusCode code)
      : id_(std::move(id)), code_(code) {}

  const std::string& id() const override { return id_; }

  Result<net::QueryResponse> Query(const std::string& text) override {
    return QueryWithDeadline(text, Deadline());
  }

  Result<net::QueryResponse> QueryWithDeadline(
      const std::string&, const Deadline& deadline) override {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    if (deadline.has_deadline()) {
      double remaining = deadline.RemainingMillis();
      if (remaining > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(remaining + 5.0));
      }
    }
    return Status(code_, "server outlived the caller's budget");
  }

  int attempts() const { return attempts_.load(std::memory_order_relaxed); }

 private:
  std::string id_;
  StatusCode code_;
  std::atomic<int> attempts_{0};
};

/// A breaker that would trip on the very first recorded failure.
net::CircuitBreakerConfig HairTriggerBreaker() {
  net::CircuitBreakerConfig config;
  config.window_size = 4;
  config.min_samples = 1;
  config.failure_rate_threshold = 0.5;
  return config;
}

/// Regression: a kTimeout that coincides with the caller's own expired
/// deadline is self-inflicted — it says nothing about endpoint health
/// and must not open the breaker (tight client deadlines would otherwise
/// trip breakers on perfectly healthy endpoints).
TEST(DeadlineRetryTest, SelfInflictedTimeoutDoesNotFeedTheBreaker) {
  SleepOutDeadlineEndpoint slow("slow", StatusCode::kTimeout);
  net::CircuitBreaker breaker(HairTriggerBreaker());
  net::RetryOutcome outcome;
  Result<net::QueryResponse> r = net::QueryWithRetry(
      &slow, "ASK { ?s ?p ?o . }", Deadline::AfterMillis(20),
      net::RetryPolicy::Standard(3), &breaker, &outcome);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
  EXPECT_EQ(outcome.breaker_trips, 0);
}

/// Contrast case: a server-side kTimeout while the caller still has
/// budget is real endpoint sickness and must keep feeding the breaker.
TEST(DeadlineRetryTest, ServerTimeoutWithBudgetLeftStillFeedsTheBreaker) {
  // Infinite client deadline: the endpoint fails instantly with kTimeout.
  SleepOutDeadlineEndpoint sick("sick", StatusCode::kTimeout);
  net::CircuitBreaker breaker(HairTriggerBreaker());
  net::RetryOutcome outcome;
  Result<net::QueryResponse> r = net::QueryWithRetry(
      &sick, "ASK { ?s ?p ?o . }", Deadline(),
      net::RetryPolicy::Standard(2), &breaker, &outcome);
  ASSERT_FALSE(r.ok());
  EXPECT_GE(breaker.trips(), 1u);
}

/// Regression: when the deadline expires during an attempt, the retry
/// loop must bail with kTimeout instead of sleeping a backoff and
/// issuing a doomed attempt (or mislabeling the exit with the prior
/// attempt's kUnavailable).
TEST(DeadlineRetryTest, NoDoomedAttemptAfterDeadlineExpires) {
  SleepOutDeadlineEndpoint slow("slow", StatusCode::kUnavailable);
  net::RetryOutcome outcome;
  Result<net::QueryResponse> r = net::QueryWithRetry(
      &slow, "ASK { ?s ?p ?o . }", Deadline::AfterMillis(20),
      net::RetryPolicy::Standard(3), /*breaker=*/nullptr, &outcome);
  ASSERT_FALSE(r.ok());
  // The deadline ended the loop, not the endpoint: kTimeout, one attempt.
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout)
      << r.status().ToString();
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(slow.attempts(), 1);
  EXPECT_EQ(outcome.retries, 0);
}

/// A fired cancel token stops the retry loop before any attempt, and
/// ResilientEndpoint::QueryCancellable threads the token through.
TEST(DeadlineRetryTest, CancelledTokenStopsRetriesBeforeAnyAttempt) {
  auto slow = std::make_shared<SleepOutDeadlineEndpoint>(
      "slow", StatusCode::kUnavailable);
  net::ResilientEndpoint endpoint(slow, net::RetryPolicy::Standard(3));
  CancelToken token = CancelToken::Cancellable();
  token.Cancel();
  Result<net::QueryResponse> r =
      endpoint.QueryCancellable("ASK { ?s ?p ?o . }", token);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(slow->attempts(), 0);
}

// ---------------------------------------------------------------------
// End-to-end: flaky federation + retries converge to exact results
// ---------------------------------------------------------------------

TEST(RetryConvergenceTest, FlakyFederationMatchesFaultFreeResults) {
  workload::LubmGenerator gen(workload::LubmConfig::Small());

  // Ground truth from a fault-free federation.
  auto clean = workload::BuildFederation(gen.GenerateAll(),
                                         net::LatencyModel::None());
  core::LusailEngine oracle(clean.get());

  // The same data behind 20%-flaky endpoints, with retries enabled.
  auto chaos =
      WrapWithFaults(gen.GenerateAll(), net::FaultProfile::Transient(0.2, 5));
  core::LusailOptions options;
  options.retry_policy = net::RetryPolicy::Standard(6);
  options.retry_policy.initial_backoff_ms = 0.1;
  options.retry_policy.max_backoff_ms = 0.5;
  // The breaker's sliding window mixes outcomes from concurrently
  // executing subqueries, so whether sustained 20% noise trips it is
  // interleaving-dependent. This test pins down retry *convergence*;
  // breaker behaviour has its own deterministic tests above and below.
  options.retry_policy.use_circuit_breaker = false;
  core::LusailEngine flaky(&chaos->faulty, options);

  uint64_t total_retries = 0;
  for (const auto& [label, query] : workload::LubmGenerator::BenchmarkQueries()) {
    auto expected = oracle.Execute(query);
    ASSERT_TRUE(expected.ok()) << label;
    auto actual = flaky.Execute(query);
    ASSERT_TRUE(actual.ok()) << label << ": " << actual.status().ToString();
    EXPECT_EQ(CanonicalRows(actual->table), CanonicalRows(expected->table))
        << label;
    EXPECT_FALSE(actual->profile.partial) << label;
    total_retries += actual->profile.retries;
  }
  EXPECT_GT(total_retries, 0u);
  uint64_t injected = 0;
  for (const auto& injector : chaos->injectors) {
    injected += injector->stats().injected_errors;
  }
  EXPECT_GT(injected, 0u);
}

TEST(RetryConvergenceTest, SameSeedSameFaultsSameResult) {
  workload::LubmGenerator gen(workload::LubmConfig::Small());
  core::LusailOptions options;
  options.retry_policy = net::RetryPolicy::Standard(6);
  options.retry_policy.initial_backoff_ms = 0.1;
  options.retry_policy.max_backoff_ms = 0.5;
  // Breaker state is interleaving-dependent; exclude it so the request
  // multiset (and thus the injected-fault tallies) is exactly repeatable.
  options.retry_policy.use_circuit_breaker = false;

  auto run = [&]() {
    auto chaos = WrapWithFaults(gen.GenerateAll(),
                                net::FaultProfile::Transient(0.2, 21));
    core::LusailEngine engine(&chaos->faulty, options);
    auto result = engine.Execute(workload::LubmGenerator::Q2());
    EXPECT_TRUE(result.ok());
    std::vector<uint64_t> injected;
    for (const auto& injector : chaos->injectors) {
      injected.push_back(injector->stats().injected_errors);
    }
    return std::make_pair(CanonicalRows(result->table), injected);
  };

  auto [rows1, injected1] = run();
  auto [rows2, injected2] = run();
  EXPECT_EQ(rows1, rows2);
  EXPECT_EQ(injected1, injected2);
}

TEST(RetryConvergenceTest, BaselinesConvergeWithSameDecorators) {
  workload::LubmGenerator gen(workload::LubmConfig::Small());
  auto clean = workload::BuildFederation(gen.GenerateAll(),
                                         net::LatencyModel::None());
  core::LusailEngine oracle(clean.get());
  auto expected = oracle.Execute(workload::LubmGenerator::QueryQa());
  ASSERT_TRUE(expected.ok());

  net::RetryPolicy retry = net::RetryPolicy::Standard(6);
  retry.initial_backoff_ms = 0.1;
  retry.max_backoff_ms = 0.5;
  retry.use_circuit_breaker = false;  // Convergence, not breaker, under test.

  {
    auto chaos = WrapWithFaults(gen.GenerateAll(),
                                net::FaultProfile::Transient(0.2, 13));
    baselines::FedXOptions options;
    options.retry_policy = retry;
    baselines::FedXEngine fedx(&chaos->faulty, options);
    auto actual = fedx.Execute(workload::LubmGenerator::QueryQa());
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(CanonicalRows(actual->table), CanonicalRows(expected->table));
  }
  {
    auto chaos = WrapWithFaults(gen.GenerateAll(),
                                net::FaultProfile::Transient(0.2, 13));
    baselines::AnapsidOptions options;
    options.retry_policy = retry;
    baselines::AnapsidEngine anapsid(&chaos->faulty, options);
    auto actual = anapsid.Execute(workload::LubmGenerator::QueryQa());
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(CanonicalRows(actual->table), CanonicalRows(expected->table));
  }
}

// ---------------------------------------------------------------------
// Graceful degradation: permanently-down endpoints
// ---------------------------------------------------------------------

TEST(PartialResultsTest, DownEndpointDegradesGracefully) {
  workload::LubmGenerator gen(workload::LubmConfig::Small());
  auto clean = workload::BuildFederation(gen.GenerateAll(),
                                         net::LatencyModel::None());
  core::LusailEngine oracle(clean.get());
  auto expected = oracle.Execute(workload::LubmGenerator::Q1());
  ASSERT_TRUE(expected.ok());

  auto chaos = WrapWithFaults(gen.GenerateAll(), net::FaultProfile::None());
  chaos->injectors[1]->set_down(true);
  const std::string down_id = chaos->injectors[1]->id();

  core::LusailOptions options;
  options.partial_results = true;
  options.retry_policy = net::RetryPolicy::Standard(2);
  options.retry_policy.initial_backoff_ms = 0.1;
  options.retry_policy.max_backoff_ms = 0.2;
  core::LusailEngine engine(&chaos->faulty, options);

  auto result = engine.Execute(workload::LubmGenerator::Q1());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->profile.partial);
  EXPECT_GE(result->profile.endpoints_failed, 1u);
  ASSERT_FALSE(result->profile.failed_endpoint_ids.empty());
  EXPECT_NE(std::find(result->profile.failed_endpoint_ids.begin(),
                      result->profile.failed_endpoint_ids.end(), down_id),
            result->profile.failed_endpoint_ids.end());

  // A partial result is a lower bound: every row also appears in the
  // exact answer.
  std::vector<std::string> exact = CanonicalRows(expected->table);
  for (const std::string& row : CanonicalRows(result->table)) {
    EXPECT_NE(std::find(exact.begin(), exact.end(), row), exact.end());
  }
}

TEST(PartialResultsTest, ExactModeAggregatesMultiEndpointErrors) {
  workload::LubmGenerator gen(workload::LubmConfig::Small());
  auto chaos = WrapWithFaults(gen.GenerateAll(), net::FaultProfile::None());
  chaos->injectors[1]->set_down(true);

  core::LusailOptions options;  // partial_results = false (default).
  core::LusailEngine engine(&chaos->faulty, options);
  auto result = engine.Execute(workload::LubmGenerator::Q1());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // The aggregated message reports the failure count, not just the first
  // error.
  EXPECT_NE(result.status().message().find("failed"), std::string::npos);
  EXPECT_NE(result.status().message().find(chaos->injectors[1]->id()),
            std::string::npos);
}

TEST(PartialResultsTest, FigureOneFederationSurvivesDownEndpoint) {
  auto chaos =
      WrapWithFaults(workload::Figure1Federation(), net::FaultProfile::None());
  chaos->injectors[1]->set_down(true);

  core::LusailOptions options;
  options.partial_results = true;
  core::LusailEngine engine(&chaos->faulty, options);
  auto result = engine.Execute(workload::Figure2QueryQa());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->profile.partial);
  // EP2 holds data Q_a needs, so the partial answer is a strict subset.
  EXPECT_LT(result->table.NumRows(), 3u);
}

// ---------------------------------------------------------------------
// Federation-owned breakers
// ---------------------------------------------------------------------

TEST(FederationBreakerTest, RepeatedFailuresTripTheSharedBreaker) {
  auto chaos =
      WrapWithFaults(workload::Figure1Federation(), net::FaultProfile::None());
  chaos->injectors[0]->set_down(true);
  chaos->faulty.ConfigureBreakers(TightBreaker());

  net::RetryPolicy retry = net::RetryPolicy::Standard(2);
  retry.initial_backoff_ms = 0.1;
  retry.max_backoff_ms = 0.2;
  fed::MetricsCollector metrics;
  for (int i = 0; i < 6; ++i) {
    auto r = chaos->faulty.Execute(0, "ASK { ?s ?p ?o . }", &metrics,
                                   Deadline(), &retry);
    EXPECT_FALSE(r.ok());
  }
  EXPECT_EQ(chaos->faulty.breaker(0)->state(),
            net::CircuitBreaker::State::kOpen);
  EXPECT_GE(chaos->faulty.breaker(0)->trips(), 1u);

  fed::ExecutionProfile profile;
  metrics.FillCounters(&profile);
  EXPECT_GT(profile.retries, 0u);
  EXPECT_GT(profile.breaker_trips, 0u);
  EXPECT_GT(profile.breaker_rejections, 0u);
}

}  // namespace
}  // namespace lusail
