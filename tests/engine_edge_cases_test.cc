// Edge-case behavior of the federated engines: ASK and COUNT at the
// federation level, empty-source queries, deadlines, unsupported shapes,
// DISTINCT/LIMIT interplay, and profile sanity.

#include <gtest/gtest.h>

#include "baselines/fedx_engine.h"
#include "core/lusail_engine.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"
#include "workload/qfed_generator.h"

namespace lusail {
namespace {

class EngineEdgeCasesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    federation_ = workload::BuildFederation(workload::Figure1Federation(),
                                            net::LatencyModel::None());
    lusail_ = std::make_unique<core::LusailEngine>(federation_.get());
    fedx_ = std::make_unique<baselines::FedXEngine>(federation_.get());
  }

  std::vector<fed::FederatedEngine*> Engines() {
    return {lusail_.get(), fedx_.get()};
  }

  std::unique_ptr<fed::Federation> federation_;
  std::unique_ptr<core::LusailEngine> lusail_;
  std::unique_ptr<baselines::FedXEngine> fedx_;
};

constexpr const char* kUbPrefix =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";

TEST_F(EngineEdgeCasesTest, FederatedAsk) {
  for (fed::FederatedEngine* engine : Engines()) {
    auto yes = engine->Execute(
        std::string(kUbPrefix) + "ASK { ?s ub:advisor ?p . }");
    ASSERT_TRUE(yes.ok()) << engine->name();
    EXPECT_EQ(yes->table.NumRows(), 1u) << engine->name();
    auto no = engine->Execute(
        std::string(kUbPrefix) + "ASK { ?s ub:nosuchpredicate ?p . }");
    ASSERT_TRUE(no.ok()) << engine->name();
    EXPECT_EQ(no->table.NumRows(), 0u) << engine->name();
  }
}

TEST_F(EngineEdgeCasesTest, FederatedCountAggregatesAcrossEndpoints) {
  for (fed::FederatedEngine* engine : Engines()) {
    auto result = engine->Execute(
        std::string(kUbPrefix) +
        "SELECT (COUNT(*) AS ?c) WHERE { ?s ub:advisor ?p . }");
    ASSERT_TRUE(result.ok()) << engine->name();
    ASSERT_EQ(result->table.NumRows(), 1u);
    // 4 advisor triples federation-wide (Lee, Sam, Kim x2).
    EXPECT_EQ(result->table.rows[0][0]->lexical(), "4") << engine->name();
  }
}

TEST_F(EngineEdgeCasesTest, NoRelevantSourceYieldsEmptyResult) {
  for (fed::FederatedEngine* engine : Engines()) {
    auto result = engine->Execute(
        "SELECT ?s WHERE { ?s <http://nowhere/p> ?o . ?o <http://nowhere/q> "
        "?x . }");
    ASSERT_TRUE(result.ok()) << engine->name();
    EXPECT_EQ(result->table.NumRows(), 0u) << engine->name();
  }
}

TEST_F(EngineEdgeCasesTest, ParseErrorsPropagate) {
  for (fed::FederatedEngine* engine : Engines()) {
    auto result = engine->Execute("SELEKT broken");
    ASSERT_FALSE(result.ok()) << engine->name();
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  }
}

TEST_F(EngineEdgeCasesTest, ExistsFilterIsRejected) {
  // FILTER NOT EXISTS is Lusail's internal check-query machinery, not a
  // supported federated construct.
  auto result = lusail_->Execute(
      std::string(kUbPrefix) +
      "SELECT ?s WHERE { ?s ub:advisor ?p . "
      "FILTER NOT EXISTS { ?p ub:teacherOf ?c . } }");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_F(EngineEdgeCasesTest, DistinctWithLimitComputesFullResultFirst) {
  workload::LubmGenerator gen(workload::LubmConfig::Small());
  auto federation =
      workload::BuildFederation(gen.GenerateAll(), net::LatencyModel::None());
  core::LusailEngine engine(federation.get());
  std::string base = "PREFIX ub: "
      "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT DISTINCT ?d WHERE { ?s ub:memberOf ?d . }";
  auto all = engine.Execute(base);
  auto limited = engine.Execute(base + " LIMIT 2");
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(all->table.NumRows(), 4u);  // 2 unis x 2 departments.
  EXPECT_EQ(limited->table.NumRows(), 2u);
}

TEST_F(EngineEdgeCasesTest, ProfilePhaseTimingsArePopulated) {
  auto result = lusail_->Execute(workload::Figure2QueryQa());
  ASSERT_TRUE(result.ok());
  const fed::ExecutionProfile& p = result->profile;
  EXPECT_GT(p.total_ms, 0.0);
  EXPECT_GE(p.execution_ms, 0.0);
  EXPECT_GT(p.requests, 0u);
  EXPECT_GT(p.bytes_sent, 0u);
  EXPECT_GT(p.bytes_received, 0u);
  // Phases are bounded by the total (loosely; allow scheduling noise).
  EXPECT_LE(p.source_selection_ms + p.analysis_ms,
            p.total_ms * 2.0 + 1.0);
}

TEST_F(EngineEdgeCasesTest, LusailDeadlineExpiresCleanly) {
  workload::QFedGenerator gen{workload::QFedConfig()};
  auto federation = workload::BuildFederation(
      gen.GenerateAll(), net::LatencyModel::LocalCluster());
  core::LusailEngine engine(federation.get());
  auto result = engine.Execute(workload::QFedGenerator::C2P2B(),
                               Deadline::AfterMillis(0.01));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST_F(EngineEdgeCasesTest, RepeatedExecutionsAreDeterministic) {
  auto first = lusail_->Execute(workload::Figure2QueryQa());
  auto second = lusail_->Execute(workload::Figure2QueryQa());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->table.NumRows(), second->table.NumRows());
  // Warm caches mean the second run issues no ASK probes.
  EXPECT_EQ(second->profile.ask_requests, 0u);
  EXPECT_LE(second->profile.requests, first->profile.requests);
}

TEST_F(EngineEdgeCasesTest, PureUnionQueryWithoutMainBgp) {
  for (fed::FederatedEngine* engine : Engines()) {
    auto result = engine->Execute(
        std::string(kUbPrefix) +
        "SELECT ?x WHERE { { ?x ub:teacherOf ?c . } UNION "
        "{ ?x ub:takesCourse ?c . } }");
    ASSERT_TRUE(result.ok()) << engine->name() << ": "
                             << result.status().ToString();
    // 3 teacherOf + 4 takesCourse triples federation-wide.
    EXPECT_EQ(result->table.NumRows(), 7u) << engine->name();
  }
}

}  // namespace
}  // namespace lusail
