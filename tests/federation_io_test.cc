// Tests for federation export/import via N-Triples files, federated
// ORDER BY, and failure injection (endpoints that error out mid-query).

#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "baselines/fedx_engine.h"
#include "core/lusail_engine.h"
#include "net/endpoint.h"
#include "net/fault_injection.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

class FederationIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lusail_io_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(FederationIoTest, ExportImportRoundTrip) {
  auto specs = workload::Figure1Federation();
  ASSERT_TRUE(workload::ExportFederation(specs, dir_.string()).ok());
  EXPECT_TRUE(std::filesystem::exists(dir_ / "EP1.nt"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "EP2.nt"));

  auto loaded = workload::LoadFederationFromDirectory(
      dir_.string(), net::LatencyModel::None());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->size(), 2u);

  // The reloaded federation answers Q_a identically.
  core::LusailEngine engine(loaded->get());
  auto result = engine.Execute(workload::Figure2QueryQa());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 3u);
}

TEST_F(FederationIoTest, MissingDirectoryIsNotFound) {
  auto loaded = workload::LoadFederationFromDirectory(
      (dir_ / "nope").string(), net::LatencyModel::None());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(FederationIoTest, CorruptFileIsReported) {
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ / "bad.nt") << "this is not ntriples\n";
  auto loaded = workload::LoadFederationFromDirectory(
      dir_.string(), net::LatencyModel::None());
  EXPECT_FALSE(loaded.ok());
}

// ---------------------------------------------------------------------
// Federated ORDER BY
// ---------------------------------------------------------------------

TEST(FederatedOrderByTest, EnginesSortAcrossEndpoints) {
  workload::LubmGenerator gen(workload::LubmConfig::Small());
  auto federation =
      workload::BuildFederation(gen.GenerateAll(), net::LatencyModel::None());
  std::string query =
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?u ?n WHERE { ?u ub:name ?n . ?u a ub:University . } "
      "ORDER BY DESC(?n)";
  core::LusailEngine lusail(federation.get());
  baselines::FedXEngine fedx(federation.get());
  for (fed::FederatedEngine* engine :
       std::initializer_list<fed::FederatedEngine*>{&lusail, &fedx}) {
    auto result = engine->Execute(query);
    ASSERT_TRUE(result.ok()) << engine->name();
    ASSERT_EQ(result->table.NumRows(), 2u) << engine->name();
    EXPECT_EQ(result->table.rows[0][1]->lexical(), "University1");
    EXPECT_EQ(result->table.rows[1][1]->lexical(), "University0");
  }
}

// ---------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------

/// An endpoint that fails every request after the first `healthy` ones.
class FlakyEndpoint : public net::Endpoint {
 public:
  FlakyEndpoint(std::shared_ptr<net::Endpoint> inner, int healthy)
      : inner_(std::move(inner)), remaining_(healthy) {}

  const std::string& id() const override { return inner_->id(); }

  Result<net::QueryResponse> Query(const std::string& text) override {
    if (remaining_-- <= 0) {
      return Status::Internal("injected endpoint failure at " + id());
    }
    return inner_->Query(text);
  }

 private:
  std::shared_ptr<net::Endpoint> inner_;
  std::atomic<int> remaining_;
};

TEST(FailureInjectionTest, EnginesSurfaceEndpointErrors) {
  auto specs = workload::Figure1Federation();
  auto healthy =
      workload::BuildFederation(specs, net::LatencyModel::None());
  // Rebuild a federation where EP2 dies after 3 requests.
  fed::Federation flaky;
  flaky.Add(std::shared_ptr<net::Endpoint>(
      healthy->endpoint(0), [](net::Endpoint*) {}));  // Aliasing, not owned.
  auto ep2 = std::shared_ptr<net::Endpoint>(healthy->endpoint(1),
                                            [](net::Endpoint*) {});
  flaky.Add(std::make_shared<FlakyEndpoint>(ep2, 3));

  core::LusailEngine lusail(&flaky);
  auto result = lusail.Execute(workload::Figure2QueryQa());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("injected"), std::string::npos);
}

// ---------------------------------------------------------------------
// Deadline propagation through the engine
// ---------------------------------------------------------------------

TEST(DeadlinePropagationTest, ExpiredDeadlineSurfacesTimeoutFromAnalysis) {
  auto federation = workload::BuildFederation(workload::Figure1Federation(),
                                              net::LatencyModel::None());
  core::LusailEngine engine(federation.get());
  Deadline expired = Deadline::AfterMillis(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto result = engine.Execute(workload::Figure2QueryQa(), expired);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST(DeadlinePropagationTest, SlowEndpointsTimeOutMidQuery) {
  // Every request sleeps longer than the whole deadline (clamped to the
  // remaining budget): a later engine phase must observe the expiry and
  // surface kTimeout instead of hanging through all phases.
  workload::LubmGenerator gen(workload::LubmConfig::Small());
  auto base =
      workload::BuildFederation(gen.GenerateAll(), net::LatencyModel::None());
  net::FaultProfile profile;
  profile.slow_rate = 1.0;
  profile.slow_latency_ms = 100.0;
  fed::Federation slow;
  std::vector<std::shared_ptr<net::FaultInjectingEndpoint>> injectors;
  for (size_t i = 0; i < base->size(); ++i) {
    auto inner = std::shared_ptr<net::Endpoint>(base->endpoint(i),
                                                [](net::Endpoint*) {});
    injectors.push_back(
        std::make_shared<net::FaultInjectingEndpoint>(inner, profile));
    slow.Add(injectors.back());
  }
  core::LusailEngine engine(&slow);
  Stopwatch timer;
  auto result =
      engine.Execute(workload::LubmGenerator::Q2(), Deadline::AfterMillis(40));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  // Far less than the ~100 ms-per-request schedule would take unclamped.
  EXPECT_LT(timer.ElapsedMillis(), 5000.0);
}

TEST(FailureInjectionTest, HealthyEndpointsUnaffectedByOtherFederations) {
  // The same endpoints can serve two federations; failures in one wrapper
  // never leak into direct use.
  auto specs = workload::Figure1Federation();
  auto federation =
      workload::BuildFederation(specs, net::LatencyModel::None());
  core::LusailEngine engine(federation.get());
  for (int i = 0; i < 3; ++i) {
    auto result = engine.Execute(workload::Figure2QueryQa());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->table.NumRows(), 3u);
  }
}

}  // namespace
}  // namespace lusail
