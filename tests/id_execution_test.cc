// ID-space execution properties: the TermDictionary (round trips,
// concurrent interning, cross-instance content hashes), the columnar
// IdTable's operators, the encode/decode boundary, and — end to end —
// row-identity of the transport ID path (responses parsed straight into
// the engine dictionary) against the string path and the union-graph
// oracle over a loopback LUBM federation.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dictionary.h"
#include "core/id_table.h"
#include "core/lusail_engine.h"
#include "net/latency_model.h"
#include "net/sparql_endpoint.h"
#include "rpc/http_server.h"
#include "rpc/http_sparql_endpoint.h"
#include "sparql/evaluator.h"
#include "sparql/parser.h"
#include "store/triple_store.h"
#include "workload/federation_builder.h"
#include "workload/lubm_generator.h"

namespace lusail {
namespace {

std::vector<rdf::Term> TermZoo() {
  return {
      rdf::Term::Iri("http://example.org/plain"),
      rdf::Term::Iri("http://example.org/caf\xC3\xA9/r\xC3\xA9sum\xC3\xA9"),
      rdf::Term::Iri("http://example.org/\xE6\x97\xA5\xE6\x9C\xAC"),
      rdf::Term::Literal(""),
      rdf::Term::Literal("plain text"),
      rdf::Term::Literal("tab\there \"and\" newline\n"),
      rdf::Term::Literal("\xC3\xA9\xC3\xA8\xC3\xAA \xD0\xBC\xD0\xB8\xD1\x80"),
      rdf::Term::LangLiteral("hallo", "de"),
      rdf::Term::LangLiteral("hallo", "de-AT"),
      rdf::Term::TypedLiteral("42", std::string(rdf::kXsdInteger)),
      rdf::Term::TypedLiteral("42", "http://example.org/custom"),
      rdf::Term::BlankNode("b0"),
      rdf::Term::BlankNode("b1"),
      rdf::Term::Double(2.5),
  };
}

// ---------------------------------------------------------------------
// TermDictionary properties
// ---------------------------------------------------------------------

TEST(TermDictionaryTest, InternRoundTripsTermZooIncludingNonAscii) {
  core::TermDictionary dict;
  std::vector<rdf::Term> zoo = TermZoo();
  std::vector<rdf::TermId> ids;
  for (const rdf::Term& term : zoo) ids.push_back(dict.Intern(term));
  EXPECT_EQ(dict.size(), zoo.size());

  // Distinct terms get distinct ids; equal terms re-intern to the same.
  std::set<rdf::TermId> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), zoo.size());
  for (size_t i = 0; i < zoo.size(); ++i) {
    EXPECT_EQ(dict.Intern(zoo[i]), ids[i]);
    EXPECT_EQ(dict.Lookup(zoo[i]), ids[i]);
    EXPECT_EQ(dict.term(ids[i]), zoo[i]) << zoo[i].ToString();
  }
  EXPECT_EQ(dict.size(), zoo.size());
  EXPECT_EQ(dict.Lookup(rdf::Term::Iri("http://never/interned")),
            rdf::kInvalidTermId);
}

TEST(TermDictionaryTest, DistinguishesKindAndFieldBoundaries) {
  // Same lexical bytes in different term kinds or field splits must not
  // alias: ids, lookups, and content hashes all stay distinct.
  core::TermDictionary dict;
  std::vector<rdf::Term> lookalikes = {
      rdf::Term::Iri("x"),
      rdf::Term::Literal("x"),
      rdf::Term::BlankNode("x"),
      rdf::Term::LangLiteral("x", "en"),
      rdf::Term::TypedLiteral("x", "en"),
      rdf::Term::Literal("xen"),
  };
  std::set<rdf::TermId> ids;
  std::set<uint64_t> hashes;
  for (const rdf::Term& term : lookalikes) {
    rdf::TermId id = dict.Intern(term);
    ids.insert(id);
    hashes.insert(dict.content_hash(id));
  }
  EXPECT_EQ(ids.size(), lookalikes.size());
  EXPECT_EQ(hashes.size(), lookalikes.size());
}

TEST(TermDictionaryTest, ConcurrentInterningConverges) {
  // Many threads intern overlapping slices of one term universe; every
  // term must end with exactly one id, and reads (term / Lookup /
  // content_hash) racing the writes must stay coherent. Run under TSan
  // this is also the dictionary's data-race check.
  core::TermDictionary dict;
  constexpr int kThreads = 8;
  constexpr int kTerms = 400;
  auto term_of = [](int i) {
    return rdf::Term::Iri("http://example.org/concurrent/\xC3\xA9/" +
                          std::to_string(i));
  };
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  std::vector<std::vector<rdf::TermId>> seen(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      seen[t].assign(kTerms, rdf::kInvalidTermId);
      // Each thread walks the universe at a different stride so the
      // shards see interleaved first-interns and re-interns (strides
      // that share factors with kTerms simply skip some indices).
      for (int k = 0; k < kTerms; ++k) {
        int i = (k * (t + 1) + t) % kTerms;
        rdf::TermId id = dict.Intern(term_of(i));
        seen[t][i] = id;
        EXPECT_EQ(dict.term(id), term_of(i));
        EXPECT_NE(dict.content_hash(id), 0u);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(dict.size(), static_cast<size_t>(kTerms));
  for (int i = 0; i < kTerms; ++i) {
    rdf::TermId id = dict.Lookup(term_of(i));
    ASSERT_NE(id, rdf::kInvalidTermId);
    for (int t = 0; t < kThreads; ++t) {
      if (seen[t][i] != rdf::kInvalidTermId) EXPECT_EQ(seen[t][i], id);
    }
  }
}

TEST(TermDictionaryTest, ContentHashesAgreeAcrossInstances) {
  // Two dictionaries interning the same terms in different orders assign
  // different ids but identical content hashes — the property VALUES
  // fingerprints rely on to stay valid keys in the engine-spanning
  // shared cache.
  core::TermDictionary first, second;
  std::vector<rdf::Term> zoo = TermZoo();
  std::vector<rdf::TermId> first_ids;
  for (const rdf::Term& term : zoo) first_ids.push_back(first.Intern(term));
  std::vector<rdf::TermId> second_ids(zoo.size());
  for (size_t i = zoo.size(); i-- > 0;) {
    second_ids[i] = second.Intern(zoo[i]);
  }
  EXPECT_NE(first.epoch(), second.epoch());
  for (size_t i = 0; i < zoo.size(); ++i) {
    EXPECT_EQ(first.content_hash(first_ids[i]),
              second.content_hash(second_ids[i]))
        << zoo[i].ToString();
  }
}

TEST(FingerprintTest, StableAcrossDictionariesAndSensitiveToContent) {
  core::TermDictionary first, second;
  std::vector<rdf::Term> zoo = TermZoo();
  std::vector<rdf::TermId> first_ids, second_ids;
  for (const rdf::Term& term : zoo) first_ids.push_back(first.Intern(term));
  // Perturb second's id assignment with extra interns before the zoo.
  for (int i = 0; i < 100; ++i) {
    second.Intern(rdf::Term::Integer(i));
  }
  for (const rdf::Term& term : zoo) second_ids.push_back(second.Intern(term));
  ASSERT_NE(first_ids[0], second_ids[0]);  // Ids genuinely differ.

  std::string a = core::FingerprintIdBindings(
      "v", first, first_ids.data(), first_ids.size());
  std::string b = core::FingerprintIdBindings(
      "v", second, second_ids.data(), second_ids.size());
  EXPECT_EQ(a, b);

  // Different variable, block order, or block content all change the key.
  EXPECT_NE(core::FingerprintIdBindings("w", first, first_ids.data(),
                                        first_ids.size()),
            a);
  std::vector<rdf::TermId> reversed(first_ids.rbegin(), first_ids.rend());
  EXPECT_NE(core::FingerprintIdBindings("v", first, reversed.data(),
                                        reversed.size()),
            a);
  EXPECT_NE(core::FingerprintIdBindings("v", first, first_ids.data(),
                                        first_ids.size() - 1),
            a);
}

// ---------------------------------------------------------------------
// IdTable operators and the encode/decode boundary
// ---------------------------------------------------------------------

TEST(IdTableTest, LazyColumnsReadAsUnboundUntilNextMutation) {
  core::IdTable table;
  table.vars = {"a"};
  table.AppendRow({7});
  table.vars.push_back("b");  // No column yet.
  EXPECT_EQ(table.At(0, 1), rdf::kInvalidTermId);
  EXPECT_TRUE(table.Column(1).empty());
  table.AppendRow({8, 9});  // Mutation materializes the column, padded.
  EXPECT_EQ(table.At(0, 0), 7u);
  EXPECT_EQ(table.At(0, 1), rdf::kInvalidTermId);
  EXPECT_EQ(table.At(1, 1), 9u);
  EXPECT_EQ(table.NumRows(), 2u);
}

TEST(IdTableTest, SliceSelectAndUnionAlignment) {
  core::IdTable table({"x", "y"});
  for (rdf::TermId i = 0; i < 10; ++i) table.AppendRow({i, i + 100});

  core::IdTable window = table.Slice(3, 6);
  ASSERT_EQ(window.NumRows(), 3u);
  EXPECT_EQ(window.At(0, 0), 3u);
  EXPECT_EQ(window.At(2, 1), 105u);

  core::IdTable picked = table.SelectRows({9, 0, 9});
  ASSERT_EQ(picked.NumRows(), 3u);
  EXPECT_EQ(picked.At(0, 0), 9u);
  EXPECT_EQ(picked.At(1, 0), 0u);
  EXPECT_EQ(picked.At(2, 1), 109u);

  // Union aligns by name and pads missing vars unbound.
  core::IdTable other({"y", "z"});
  other.AppendRow({55, 66});
  core::AppendUnionIds(&table, other);
  ASSERT_EQ(table.NumRows(), 11u);
  EXPECT_EQ(table.At(10, 0), rdf::kInvalidTermId);  // x unbound.
  EXPECT_EQ(table.At(10, 1), 55u);
  ASSERT_EQ(table.vars.size(), 3u);
  EXPECT_EQ(table.vars[2], "z");
  EXPECT_EQ(table.At(10, 2), 66u);
  EXPECT_EQ(table.At(0, 2), rdf::kInvalidTermId);
}

TEST(IdTableTest, JoinAndProjectMatchSparqlSemantics) {
  core::IdTable left({"k", "a"});
  left.AppendRow({1, 10});
  left.AppendRow({2, 20});
  left.AppendRow({rdf::kInvalidTermId, 30});  // Unbound k joins anything.
  core::IdTable right({"k", "b"});
  right.AppendRow({2, 200});
  right.AppendRow({3, 300});

  core::IdTable inner = core::JoinIds(left, right, /*left_outer=*/false);
  ASSERT_EQ(inner.vars, (std::vector<std::string>{"k", "a", "b"}));
  // Row {2,20} matches {2,200}; unbound-k row matches both right rows
  // with the bound side's k surfacing in the shared column.
  EXPECT_EQ(inner.NumRows(), 3u);
  size_t bound_k = 0;
  for (size_t r = 0; r < inner.NumRows(); ++r) {
    bound_k += inner.At(r, 0) != rdf::kInvalidTermId;
  }
  EXPECT_EQ(bound_k, 3u);

  core::IdTable outer = core::JoinIds(left, right, /*left_outer=*/true);
  EXPECT_EQ(outer.NumRows(), 4u);  // {1,10} survives with b unbound.

  core::IdTable dedup = core::ProjectIds(inner, {"b"}, /*distinct=*/true);
  ASSERT_EQ(dedup.vars, (std::vector<std::string>{"b"}));
  EXPECT_EQ(dedup.NumRows(), 2u);  // 200 (twice) and 300 collapse.
}

TEST(IdTableTest, EncodeDecodeRoundTripsTheTermZoo) {
  sparql::ResultTable wire;
  wire.vars = {"a", "b"};
  std::vector<rdf::Term> zoo = TermZoo();
  for (size_t i = 0; i + 1 < zoo.size(); i += 2) {
    wire.rows.push_back({zoo[i], zoo[i + 1]});
  }
  wire.rows.push_back({std::nullopt, zoo[0]});
  wire.rows.push_back({std::nullopt, std::nullopt});

  core::TermDictionary dict;
  core::IdTable encoded = core::EncodeResultTable(wire, &dict);
  EXPECT_EQ(encoded.NumRows(), wire.rows.size());
  sparql::ResultTable decoded = core::DecodeIdTable(encoded, dict);
  ASSERT_EQ(decoded.rows.size(), wire.rows.size());
  EXPECT_EQ(decoded.vars, wire.vars);
  for (size_t r = 0; r < wire.rows.size(); ++r) {
    for (size_t c = 0; c < wire.vars.size(); ++c) {
      ASSERT_EQ(decoded.rows[r][c].has_value(), wire.rows[r][c].has_value());
      if (wire.rows[r][c].has_value()) {
        EXPECT_EQ(*decoded.rows[r][c], *wire.rows[r][c]);
      }
    }
  }
  core::DictionaryStats stats = dict.GetStats();
  EXPECT_GT(stats.encode_terms, 0u);
  EXPECT_GT(stats.decode_terms, 0u);
}

// ---------------------------------------------------------------------
// Loopback federation: ID path vs string path vs oracle
// ---------------------------------------------------------------------

std::multiset<std::string> RowBag(const sparql::ResultTable& table) {
  std::vector<size_t> order(table.vars.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return table.vars[a] < table.vars[b];
  });
  std::multiset<std::string> rows;
  for (const auto& row : table.rows) {
    std::string line;
    for (size_t i : order) {
      line += table.vars[i] + "=" +
              (row[i].has_value() ? row[i]->ToString() : "UNDEF") + "|";
    }
    rows.insert(line);
  }
  return rows;
}

class IdExecutionLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::LubmConfig config = workload::LubmConfig::Small();
    config.num_universities = 3;
    specs_ = workload::LubmGenerator(config).GenerateAll();
    for (const auto& spec : specs_) {
      auto store = std::make_unique<store::TripleStore>();
      for (const auto& triple : spec.triples) store->Add(triple);
      store->Freeze();
      auto endpoint = std::make_shared<net::SparqlEndpoint>(
          spec.id, std::move(store), net::LatencyModel::None());
      auto server = std::make_unique<rpc::HttpServer>(endpoint);
      ASSERT_TRUE(server->Start().ok());
      auto client = std::make_shared<rpc::HttpSparqlEndpoint>(
          spec.id, "127.0.0.1", server->port());
      clients_.push_back(client);
      remote_.Add(client);
      servers_.push_back(std::move(server));
    }
  }
  void TearDown() override {
    for (auto& server : servers_) server->Stop();
  }

  sparql::ResultTable Oracle(const std::string& text) {
    store::TripleStore store;
    for (const auto& spec : specs_) {
      for (const rdf::TermTriple& t : spec.triples) store.Add(t);
    }
    store.Freeze();
    sparql::Evaluator evaluator(&store);
    auto query = sparql::ParseQuery(text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    auto result = evaluator.Execute(*query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  std::vector<workload::EndpointSpec> specs_;
  fed::Federation remote_;
  std::vector<std::shared_ptr<rpc::HttpSparqlEndpoint>> clients_;
  std::vector<std::unique_ptr<rpc::HttpServer>> servers_;
};

TEST_F(IdExecutionLoopbackTest, IdPathIsRowIdenticalToStringPathAndOracle) {
  // String path: responses arrive as wire tables and are encoded at the
  // federator boundary.
  core::LusailEngine string_engine(&remote_);

  std::vector<std::pair<std::string, std::string>> queries =
      workload::LubmGenerator::BenchmarkQueries();
  queries.push_back({"Qa", workload::LubmGenerator::QueryQa()});

  std::map<std::string, std::multiset<std::string>> string_rows;
  for (const auto& [label, text] : queries) {
    auto result = string_engine.Execute(text);
    ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    string_rows[label] = RowBag(result->table);
  }

  // ID path: the transport parses SRJ straight into the engine's
  // dictionary; no federator-side string rows exist until the final
  // projected window is decoded.
  core::LusailEngine id_engine(&remote_);
  for (auto& client : clients_) {
    client->set_parse_dictionary(id_engine.dictionary());
  }
  for (const auto& [label, text] : queries) {
    auto result = id_engine.Execute(text);
    ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    auto parsed = sparql::ParseQuery(text);
    ASSERT_TRUE(parsed.ok());
    if (parsed->limit.has_value()) {
      // LIMIT picks an arbitrary subset; row counts must still agree.
      EXPECT_EQ(result->table.NumRows(), string_rows[label].size()) << label;
      continue;
    }
    EXPECT_EQ(RowBag(result->table), string_rows[label]) << label;
    EXPECT_EQ(RowBag(result->table), RowBag(Oracle(text))) << label;
  }
  // The fast path actually ran: the engine dictionary saw the terms the
  // transport interned while parsing responses.
  EXPECT_GT(id_engine.dictionary()->size(), 0u);
  for (auto& client : clients_) client->set_parse_dictionary(nullptr);
}

// ---------------------------------------------------------------------
// Dictionary snapshots: SaveToDisk / LoadFromDisk
// ---------------------------------------------------------------------

std::string DictSnapshotPath(const std::string& name) {
  return ::testing::TempDir() + "lusail_" + name + ".dict";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(DictionarySnapshotTest, RoundTripReproducesIdsAndContentHashes) {
  const std::string path = DictSnapshotPath("roundtrip");
  core::TermDictionary original;
  std::vector<rdf::Term> zoo = TermZoo();
  std::vector<rdf::TermId> ids;
  for (const rdf::Term& term : zoo) ids.push_back(original.Intern(term));
  ASSERT_TRUE(original.SaveToDisk(path).ok());

  core::TermDictionary restored;
  auto loaded = restored.LoadFromDisk(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, zoo.size());
  EXPECT_EQ(restored.size(), original.size());
  for (size_t i = 0; i < zoo.size(); ++i) {
    // Identical TermId for every term — id-derived state persisted
    // alongside the dictionary stays meaningful after the restart.
    EXPECT_EQ(restored.Lookup(zoo[i]), ids[i]) << zoo[i].ToString();
    EXPECT_EQ(restored.term(ids[i]), zoo[i]);
    EXPECT_EQ(restored.content_hash(ids[i]), original.content_hash(ids[i]));
  }
  std::remove(path.c_str());
}

TEST(DictionarySnapshotTest, LoadIntoNonEmptyDictionaryIsRejected) {
  const std::string path = DictSnapshotPath("nonempty");
  core::TermDictionary original;
  original.Intern(rdf::Term::Iri("http://ex/a"));
  ASSERT_TRUE(original.SaveToDisk(path).ok());

  core::TermDictionary busy;
  busy.Intern(rdf::Term::Iri("http://ex/b"));
  auto loaded = busy.LoadFromDisk(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(busy.size(), 1u);  // Untouched.
  std::remove(path.c_str());
}

TEST(DictionarySnapshotTest, MissingSnapshotIsNotFound) {
  core::TermDictionary dict;
  auto loaded = dict.LoadFromDisk(DictSnapshotPath("does_not_exist"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(DictionarySnapshotTest, CorruptSnapshotIsRejectedWithoutMutation) {
  const std::string path = DictSnapshotPath("corrupt");
  core::TermDictionary original;
  for (const rdf::Term& term : TermZoo()) original.Intern(term);
  ASSERT_TRUE(original.SaveToDisk(path).ok());

  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 20u);
  bytes[bytes.size() / 2] ^= 0x5a;  // Flip bits mid-body.
  WriteFileBytes(path, bytes);

  core::TermDictionary restored;
  ASSERT_FALSE(restored.LoadFromDisk(path).ok());
  EXPECT_EQ(restored.size(), 0u);
  std::remove(path.c_str());
}

TEST(DictionarySnapshotTest, TruncatedAndBadMagicSnapshotsAreRejected) {
  const std::string path = DictSnapshotPath("truncated");
  core::TermDictionary original;
  for (const rdf::Term& term : TermZoo()) original.Intern(term);
  ASSERT_TRUE(original.SaveToDisk(path).ok());
  std::string bytes = ReadFileBytes(path);

  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
  core::TermDictionary after_truncation;
  ASSERT_FALSE(after_truncation.LoadFromDisk(path).ok());
  EXPECT_EQ(after_truncation.size(), 0u);

  std::string wrong_magic = bytes;
  wrong_magic[0] ^= 0xff;
  WriteFileBytes(path, wrong_magic);
  core::TermDictionary after_magic;
  ASSERT_FALSE(after_magic.LoadFromDisk(path).ok());
  EXPECT_EQ(after_magic.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lusail
