file(REMOVE_RECURSE
  "CMakeFiles/lusail_net.dir/net/latency_model.cc.o"
  "CMakeFiles/lusail_net.dir/net/latency_model.cc.o.d"
  "CMakeFiles/lusail_net.dir/net/sparql_endpoint.cc.o"
  "CMakeFiles/lusail_net.dir/net/sparql_endpoint.cc.o.d"
  "liblusail_net.a"
  "liblusail_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
