file(REMOVE_RECURSE
  "liblusail_net.a"
)
