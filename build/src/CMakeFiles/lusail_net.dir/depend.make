# Empty dependencies file for lusail_net.
# This may be replaced when dependencies are built.
