file(REMOVE_RECURSE
  "liblusail_rdf.a"
)
