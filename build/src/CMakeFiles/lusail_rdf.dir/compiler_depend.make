# Empty compiler generated dependencies file for lusail_rdf.
# This may be replaced when dependencies are built.
