file(REMOVE_RECURSE
  "CMakeFiles/lusail_rdf.dir/rdf/dictionary.cc.o"
  "CMakeFiles/lusail_rdf.dir/rdf/dictionary.cc.o.d"
  "CMakeFiles/lusail_rdf.dir/rdf/ntriples.cc.o"
  "CMakeFiles/lusail_rdf.dir/rdf/ntriples.cc.o.d"
  "CMakeFiles/lusail_rdf.dir/rdf/term.cc.o"
  "CMakeFiles/lusail_rdf.dir/rdf/term.cc.o.d"
  "liblusail_rdf.a"
  "liblusail_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
