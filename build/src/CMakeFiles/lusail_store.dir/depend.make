# Empty dependencies file for lusail_store.
# This may be replaced when dependencies are built.
