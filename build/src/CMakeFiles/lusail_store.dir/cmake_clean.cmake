file(REMOVE_RECURSE
  "CMakeFiles/lusail_store.dir/store/triple_store.cc.o"
  "CMakeFiles/lusail_store.dir/store/triple_store.cc.o.d"
  "liblusail_store.a"
  "liblusail_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
