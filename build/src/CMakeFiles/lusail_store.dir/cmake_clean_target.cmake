file(REMOVE_RECURSE
  "liblusail_store.a"
)
