file(REMOVE_RECURSE
  "liblusail_federation.a"
)
