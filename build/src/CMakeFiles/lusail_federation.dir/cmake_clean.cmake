file(REMOVE_RECURSE
  "CMakeFiles/lusail_federation.dir/federation/binding_table.cc.o"
  "CMakeFiles/lusail_federation.dir/federation/binding_table.cc.o.d"
  "CMakeFiles/lusail_federation.dir/federation/federation.cc.o"
  "CMakeFiles/lusail_federation.dir/federation/federation.cc.o.d"
  "CMakeFiles/lusail_federation.dir/federation/source_selection.cc.o"
  "CMakeFiles/lusail_federation.dir/federation/source_selection.cc.o.d"
  "liblusail_federation.a"
  "liblusail_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
