# Empty compiler generated dependencies file for lusail_federation.
# This may be replaced when dependencies are built.
