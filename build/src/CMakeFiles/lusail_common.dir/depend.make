# Empty dependencies file for lusail_common.
# This may be replaced when dependencies are built.
