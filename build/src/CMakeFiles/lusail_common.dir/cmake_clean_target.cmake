file(REMOVE_RECURSE
  "liblusail_common.a"
)
