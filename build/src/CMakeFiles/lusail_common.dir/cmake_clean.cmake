file(REMOVE_RECURSE
  "CMakeFiles/lusail_common.dir/common/status.cc.o"
  "CMakeFiles/lusail_common.dir/common/status.cc.o.d"
  "CMakeFiles/lusail_common.dir/common/string_util.cc.o"
  "CMakeFiles/lusail_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/lusail_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/lusail_common.dir/common/thread_pool.cc.o.d"
  "liblusail_common.a"
  "liblusail_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
