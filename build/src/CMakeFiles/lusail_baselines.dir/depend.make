# Empty dependencies file for lusail_baselines.
# This may be replaced when dependencies are built.
