file(REMOVE_RECURSE
  "liblusail_baselines.a"
)
