file(REMOVE_RECURSE
  "CMakeFiles/lusail_baselines.dir/baselines/anapsid_engine.cc.o"
  "CMakeFiles/lusail_baselines.dir/baselines/anapsid_engine.cc.o.d"
  "CMakeFiles/lusail_baselines.dir/baselines/fedx_engine.cc.o"
  "CMakeFiles/lusail_baselines.dir/baselines/fedx_engine.cc.o.d"
  "CMakeFiles/lusail_baselines.dir/baselines/hibiscus.cc.o"
  "CMakeFiles/lusail_baselines.dir/baselines/hibiscus.cc.o.d"
  "CMakeFiles/lusail_baselines.dir/baselines/splendid_engine.cc.o"
  "CMakeFiles/lusail_baselines.dir/baselines/splendid_engine.cc.o.d"
  "liblusail_baselines.a"
  "liblusail_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
