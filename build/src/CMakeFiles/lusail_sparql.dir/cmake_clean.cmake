file(REMOVE_RECURSE
  "CMakeFiles/lusail_sparql.dir/sparql/ast.cc.o"
  "CMakeFiles/lusail_sparql.dir/sparql/ast.cc.o.d"
  "CMakeFiles/lusail_sparql.dir/sparql/evaluator.cc.o"
  "CMakeFiles/lusail_sparql.dir/sparql/evaluator.cc.o.d"
  "CMakeFiles/lusail_sparql.dir/sparql/expr_eval.cc.o"
  "CMakeFiles/lusail_sparql.dir/sparql/expr_eval.cc.o.d"
  "CMakeFiles/lusail_sparql.dir/sparql/parser.cc.o"
  "CMakeFiles/lusail_sparql.dir/sparql/parser.cc.o.d"
  "CMakeFiles/lusail_sparql.dir/sparql/serializer.cc.o"
  "CMakeFiles/lusail_sparql.dir/sparql/serializer.cc.o.d"
  "liblusail_sparql.a"
  "liblusail_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
