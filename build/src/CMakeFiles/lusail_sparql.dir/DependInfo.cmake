
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparql/ast.cc" "src/CMakeFiles/lusail_sparql.dir/sparql/ast.cc.o" "gcc" "src/CMakeFiles/lusail_sparql.dir/sparql/ast.cc.o.d"
  "/root/repo/src/sparql/evaluator.cc" "src/CMakeFiles/lusail_sparql.dir/sparql/evaluator.cc.o" "gcc" "src/CMakeFiles/lusail_sparql.dir/sparql/evaluator.cc.o.d"
  "/root/repo/src/sparql/expr_eval.cc" "src/CMakeFiles/lusail_sparql.dir/sparql/expr_eval.cc.o" "gcc" "src/CMakeFiles/lusail_sparql.dir/sparql/expr_eval.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/CMakeFiles/lusail_sparql.dir/sparql/parser.cc.o" "gcc" "src/CMakeFiles/lusail_sparql.dir/sparql/parser.cc.o.d"
  "/root/repo/src/sparql/serializer.cc" "src/CMakeFiles/lusail_sparql.dir/sparql/serializer.cc.o" "gcc" "src/CMakeFiles/lusail_sparql.dir/sparql/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lusail_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
