file(REMOVE_RECURSE
  "liblusail_sparql.a"
)
