# Empty compiler generated dependencies file for lusail_sparql.
# This may be replaced when dependencies are built.
