file(REMOVE_RECURSE
  "CMakeFiles/lusail_core.dir/core/cost_model.cc.o"
  "CMakeFiles/lusail_core.dir/core/cost_model.cc.o.d"
  "CMakeFiles/lusail_core.dir/core/decomposer.cc.o"
  "CMakeFiles/lusail_core.dir/core/decomposer.cc.o.d"
  "CMakeFiles/lusail_core.dir/core/gjv_detector.cc.o"
  "CMakeFiles/lusail_core.dir/core/gjv_detector.cc.o.d"
  "CMakeFiles/lusail_core.dir/core/hash_join.cc.o"
  "CMakeFiles/lusail_core.dir/core/hash_join.cc.o.d"
  "CMakeFiles/lusail_core.dir/core/join_optimizer.cc.o"
  "CMakeFiles/lusail_core.dir/core/join_optimizer.cc.o.d"
  "CMakeFiles/lusail_core.dir/core/lusail_engine.cc.o"
  "CMakeFiles/lusail_core.dir/core/lusail_engine.cc.o.d"
  "CMakeFiles/lusail_core.dir/core/query_graph.cc.o"
  "CMakeFiles/lusail_core.dir/core/query_graph.cc.o.d"
  "CMakeFiles/lusail_core.dir/core/sape.cc.o"
  "CMakeFiles/lusail_core.dir/core/sape.cc.o.d"
  "liblusail_core.a"
  "liblusail_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
