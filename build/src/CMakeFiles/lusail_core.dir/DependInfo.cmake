
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/lusail_core.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/lusail_core.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/decomposer.cc" "src/CMakeFiles/lusail_core.dir/core/decomposer.cc.o" "gcc" "src/CMakeFiles/lusail_core.dir/core/decomposer.cc.o.d"
  "/root/repo/src/core/gjv_detector.cc" "src/CMakeFiles/lusail_core.dir/core/gjv_detector.cc.o" "gcc" "src/CMakeFiles/lusail_core.dir/core/gjv_detector.cc.o.d"
  "/root/repo/src/core/hash_join.cc" "src/CMakeFiles/lusail_core.dir/core/hash_join.cc.o" "gcc" "src/CMakeFiles/lusail_core.dir/core/hash_join.cc.o.d"
  "/root/repo/src/core/join_optimizer.cc" "src/CMakeFiles/lusail_core.dir/core/join_optimizer.cc.o" "gcc" "src/CMakeFiles/lusail_core.dir/core/join_optimizer.cc.o.d"
  "/root/repo/src/core/lusail_engine.cc" "src/CMakeFiles/lusail_core.dir/core/lusail_engine.cc.o" "gcc" "src/CMakeFiles/lusail_core.dir/core/lusail_engine.cc.o.d"
  "/root/repo/src/core/query_graph.cc" "src/CMakeFiles/lusail_core.dir/core/query_graph.cc.o" "gcc" "src/CMakeFiles/lusail_core.dir/core/query_graph.cc.o.d"
  "/root/repo/src/core/sape.cc" "src/CMakeFiles/lusail_core.dir/core/sape.cc.o" "gcc" "src/CMakeFiles/lusail_core.dir/core/sape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lusail_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
