# Empty dependencies file for lusail_core.
# This may be replaced when dependencies are built.
