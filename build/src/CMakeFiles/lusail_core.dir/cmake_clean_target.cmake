file(REMOVE_RECURSE
  "liblusail_core.a"
)
