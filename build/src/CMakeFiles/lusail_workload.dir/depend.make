# Empty dependencies file for lusail_workload.
# This may be replaced when dependencies are built.
