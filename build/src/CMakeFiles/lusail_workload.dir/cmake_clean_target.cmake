file(REMOVE_RECURSE
  "liblusail_workload.a"
)
