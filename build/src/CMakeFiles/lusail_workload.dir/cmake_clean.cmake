file(REMOVE_RECURSE
  "CMakeFiles/lusail_workload.dir/workload/federation_builder.cc.o"
  "CMakeFiles/lusail_workload.dir/workload/federation_builder.cc.o.d"
  "CMakeFiles/lusail_workload.dir/workload/lrb_generator.cc.o"
  "CMakeFiles/lusail_workload.dir/workload/lrb_generator.cc.o.d"
  "CMakeFiles/lusail_workload.dir/workload/lubm_generator.cc.o"
  "CMakeFiles/lusail_workload.dir/workload/lubm_generator.cc.o.d"
  "CMakeFiles/lusail_workload.dir/workload/qfed_generator.cc.o"
  "CMakeFiles/lusail_workload.dir/workload/qfed_generator.cc.o.d"
  "liblusail_workload.a"
  "liblusail_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
