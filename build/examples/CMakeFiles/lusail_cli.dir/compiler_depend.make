# Empty compiler generated dependencies file for lusail_cli.
# This may be replaced when dependencies are built.
