file(REMOVE_RECURSE
  "CMakeFiles/lusail_cli.dir/lusail_cli.cpp.o"
  "CMakeFiles/lusail_cli.dir/lusail_cli.cpp.o.d"
  "lusail_cli"
  "lusail_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
