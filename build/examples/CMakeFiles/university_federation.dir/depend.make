# Empty dependencies file for university_federation.
# This may be replaced when dependencies are built.
