file(REMOVE_RECURSE
  "CMakeFiles/life_sciences.dir/life_sciences.cpp.o"
  "CMakeFiles/life_sciences.dir/life_sciences.cpp.o.d"
  "life_sciences"
  "life_sciences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/life_sciences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
