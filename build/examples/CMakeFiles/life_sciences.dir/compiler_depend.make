# Empty compiler generated dependencies file for life_sciences.
# This may be replaced when dependencies are built.
