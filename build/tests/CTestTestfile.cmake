# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lusail_engine_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rdf_test[1]_include.cmake")
include("/root/repo/build/tests/triple_store_test[1]_include.cmake")
include("/root/repo/build/tests/sparql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/federation_test[1]_include.cmake")
include("/root/repo/build/tests/core_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/core_execution_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/random_query_test[1]_include.cmake")
include("/root/repo/build/tests/optional_pushdown_test[1]_include.cmake")
include("/root/repo/build/tests/federation_io_test[1]_include.cmake")
include("/root/repo/build/tests/engine_edge_cases_test[1]_include.cmake")
