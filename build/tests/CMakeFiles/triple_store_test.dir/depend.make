# Empty dependencies file for triple_store_test.
# This may be replaced when dependencies are built.
