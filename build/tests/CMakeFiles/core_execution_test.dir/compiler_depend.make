# Empty compiler generated dependencies file for core_execution_test.
# This may be replaced when dependencies are built.
