file(REMOVE_RECURSE
  "CMakeFiles/core_execution_test.dir/core_execution_test.cc.o"
  "CMakeFiles/core_execution_test.dir/core_execution_test.cc.o.d"
  "core_execution_test"
  "core_execution_test.pdb"
  "core_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
