# Empty dependencies file for federation_io_test.
# This may be replaced when dependencies are built.
