file(REMOVE_RECURSE
  "CMakeFiles/federation_io_test.dir/federation_io_test.cc.o"
  "CMakeFiles/federation_io_test.dir/federation_io_test.cc.o.d"
  "federation_io_test"
  "federation_io_test.pdb"
  "federation_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
