file(REMOVE_RECURSE
  "CMakeFiles/lusail_engine_test.dir/lusail_engine_test.cc.o"
  "CMakeFiles/lusail_engine_test.dir/lusail_engine_test.cc.o.d"
  "lusail_engine_test"
  "lusail_engine_test.pdb"
  "lusail_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lusail_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
