# Empty compiler generated dependencies file for lusail_engine_test.
# This may be replaced when dependencies are built.
