# Empty dependencies file for optional_pushdown_test.
# This may be replaced when dependencies are built.
