
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optional_pushdown_test.cc" "tests/CMakeFiles/optional_pushdown_test.dir/optional_pushdown_test.cc.o" "gcc" "tests/CMakeFiles/optional_pushdown_test.dir/optional_pushdown_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lusail_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lusail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
