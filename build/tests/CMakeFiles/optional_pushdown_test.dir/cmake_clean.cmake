file(REMOVE_RECURSE
  "CMakeFiles/optional_pushdown_test.dir/optional_pushdown_test.cc.o"
  "CMakeFiles/optional_pushdown_test.dir/optional_pushdown_test.cc.o.d"
  "optional_pushdown_test"
  "optional_pushdown_test.pdb"
  "optional_pushdown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optional_pushdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
