file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_memory.dir/bench_extended_memory.cc.o"
  "CMakeFiles/bench_extended_memory.dir/bench_extended_memory.cc.o.d"
  "bench_extended_memory"
  "bench_extended_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
