# Empty dependencies file for bench_extended_memory.
# This may be replaced when dependencies are built.
