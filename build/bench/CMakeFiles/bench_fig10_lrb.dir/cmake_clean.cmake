file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_lrb.dir/bench_fig10_lrb.cc.o"
  "CMakeFiles/bench_fig10_lrb.dir/bench_fig10_lrb.cc.o.d"
  "bench_fig10_lrb"
  "bench_fig10_lrb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_lrb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
