# Empty dependencies file for bench_fig9_lubm.
# This may be replaced when dependencies are built.
