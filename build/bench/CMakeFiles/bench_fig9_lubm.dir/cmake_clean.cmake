file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_lubm.dir/bench_fig9_lubm.cc.o"
  "CMakeFiles/bench_fig9_lubm.dir/bench_fig9_lubm.cc.o.d"
  "bench_fig9_lubm"
  "bench_fig9_lubm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_lubm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
