file(REMOVE_RECURSE
  "CMakeFiles/bench_qerror.dir/bench_qerror.cc.o"
  "CMakeFiles/bench_qerror.dir/bench_qerror.cc.o.d"
  "bench_qerror"
  "bench_qerror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qerror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
