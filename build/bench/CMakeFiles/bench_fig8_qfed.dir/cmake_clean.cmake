file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_qfed.dir/bench_fig8_qfed.cc.o"
  "CMakeFiles/bench_fig8_qfed.dir/bench_fig8_qfed.cc.o.d"
  "bench_fig8_qfed"
  "bench_fig8_qfed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_qfed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
