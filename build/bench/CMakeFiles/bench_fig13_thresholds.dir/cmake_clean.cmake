file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_thresholds.dir/bench_fig13_thresholds.cc.o"
  "CMakeFiles/bench_fig13_thresholds.dir/bench_fig13_thresholds.cc.o.d"
  "bench_fig13_thresholds"
  "bench_fig13_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
