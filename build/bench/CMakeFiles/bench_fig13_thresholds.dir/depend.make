# Empty dependencies file for bench_fig13_thresholds.
# This may be replaced when dependencies are built.
