file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_profile.dir/bench_fig12_profile.cc.o"
  "CMakeFiles/bench_fig12_profile.dir/bench_fig12_profile.cc.o.d"
  "bench_fig12_profile"
  "bench_fig12_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
